// Self-contained runtime embedded verbatim (as `mod rt`) inside every
// evaluator emitted by `rustgen`. It must stay dependency-free (std only)
// and byte-compatible with the interpreter's `aptfile`/`value`/`funcs`
// stack: identical CRC polynomial, frame layout, value encoding tags,
// collection iteration orders, and standard-function semantics. Any
// divergence here shows up as a differential-oracle failure, not a crash.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — same table construction as `eval::crc`.
// ---------------------------------------------------------------------------

const CRC_POLY: u32 = 0xEDB8_8320;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

// ---------------------------------------------------------------------------
// APT v2 container: 28-byte checksummed header + CRC-framed records.
// ---------------------------------------------------------------------------

pub const HEADER_LEN: usize = 28;
const MAGIC: &[u8; 4] = b"APT1";
const VERSION: u16 = 2;
/// Smallest plausible framed record (empty-values symbol record + frame).
const MIN_FRAMED_RECORD: u64 = 19;

fn rd_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn rd_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

fn rd_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Validate the whole-file header exactly like `aptfile::check_header`.
pub fn check_header(buf: &[u8]) -> Result<(), String> {
    if buf.len() < HEADER_LEN {
        return Err("APT header truncated".to_string());
    }
    if &buf[0..4] != MAGIC {
        return Err("bad APT magic".to_string());
    }
    let version = rd_u16(buf, 4);
    if version != VERSION {
        return Err(format!("unsupported APT version {}", version));
    }
    let stored = rd_u32(buf, 24);
    if crc32(&buf[..24]) != stored {
        return Err("APT header checksum mismatch".to_string());
    }
    let records = rd_u64(buf, 8);
    let bytes = rd_u64(buf, 16);
    if bytes != (buf.len() - HEADER_LEN) as u64 {
        return Err("APT length mismatch".to_string());
    }
    let plausible =
        records.saturating_mul(MIN_FRAMED_RECORD) <= bytes && (records > 0 || bytes == 0);
    if !plausible {
        return Err("implausible APT record count".to_string());
    }
    Ok(())
}

/// Framed writer over an owned buffer; `finish` patches the header.
pub struct Writer {
    buf: Vec<u8>,
    records: u64,
    bytes: u64,
}

impl Default for Writer {
    fn default() -> Writer {
        Writer::new()
    }
}

impl Writer {
    pub fn new() -> Writer {
        Writer {
            buf: vec![0u8; HEADER_LEN],
            records: 0,
            bytes: 0,
        }
    }

    /// Append one record payload as `[len][payload][crc32][len]`.
    pub fn write(&mut self, payload: &[u8]) {
        let len = payload.len() as u32;
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.records += 1;
        self.bytes += payload.len() as u64 + 12;
    }

    pub fn finish(mut self) -> Vec<u8> {
        self.buf[0..4].copy_from_slice(MAGIC);
        self.buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        self.buf[6] = 0;
        self.buf[7] = 0;
        self.buf[8..16].copy_from_slice(&self.records.to_le_bytes());
        self.buf[16..24].copy_from_slice(&self.bytes.to_le_bytes());
        let crc = crc32(&self.buf[..24]);
        self.buf[24..28].copy_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// Framed reader over a borrowed buffer, forward or backward.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    forward: bool,
}

impl<'a> Reader<'a> {
    pub fn open(buf: &'a [u8], forward: bool) -> Result<Reader<'a>, String> {
        check_header(buf)?;
        Ok(Reader {
            buf,
            pos: if forward { HEADER_LEN } else { buf.len() },
            forward,
        })
    }

    // Fallible and borrowing — deliberately not an `Iterator`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<&'a [u8]>, String> {
        if self.forward {
            self.next_forward()
        } else {
            self.next_backward()
        }
    }

    fn next_forward(&mut self) -> Result<Option<&'a [u8]>, String> {
        if self.pos >= self.buf.len() {
            return Ok(None);
        }
        if self.pos + 12 > self.buf.len() {
            return Err("truncated frame".to_string());
        }
        let len = rd_u32(self.buf, self.pos) as usize;
        if self.pos + 12 + len > self.buf.len() {
            return Err("frame overruns file".to_string());
        }
        let payload = &self.buf[self.pos + 4..self.pos + 4 + len];
        let crc = rd_u32(self.buf, self.pos + 4 + len);
        let trail = rd_u32(self.buf, self.pos + 8 + len) as usize;
        if trail != len {
            return Err("frame length trailer mismatch".to_string());
        }
        if crc32(payload) != crc {
            return Err("frame checksum mismatch".to_string());
        }
        self.pos += 12 + len;
        Ok(Some(payload))
    }

    fn next_backward(&mut self) -> Result<Option<&'a [u8]>, String> {
        if self.pos == HEADER_LEN {
            return Ok(None);
        }
        if self.pos < HEADER_LEN + 12 {
            return Err("truncated frame".to_string());
        }
        let len = rd_u32(self.buf, self.pos - 4) as usize;
        if self.pos < HEADER_LEN + 12 + len {
            return Err("frame underruns file".to_string());
        }
        let start = self.pos - 12 - len;
        let lead = rd_u32(self.buf, start) as usize;
        if lead != len {
            return Err("frame length leader mismatch".to_string());
        }
        let payload = &self.buf[start + 4..start + 4 + len];
        let crc = rd_u32(self.buf, start + 4 + len);
        if crc32(payload) != crc {
            return Err("frame checksum mismatch".to_string());
        }
        self.pos = start;
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Values: the interpreter's `Value` with identical encoding and identical
// collection orders (cons-list internals, newest-first set/map iteration).
// ---------------------------------------------------------------------------

pub struct Node {
    head: Value,
    tail: List,
}

/// Immutable cons list (structural sharing, iterative drop).
pub struct List(Option<Rc<Node>>);

impl Clone for List {
    fn clone(&self) -> List {
        List(self.0.clone())
    }
}

impl Drop for List {
    fn drop(&mut self) {
        let mut cur = self.0.take();
        while let Some(rc) = cur {
            match Rc::try_unwrap(rc) {
                Ok(mut node) => cur = node.tail.0.take(),
                Err(_) => break,
            }
        }
    }
}

pub struct ListIter<'a> {
    cur: &'a Option<Rc<Node>>,
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a Value;

    fn next(&mut self) -> Option<&'a Value> {
        match self.cur {
            Some(node) => {
                let v = &node.head;
                self.cur = &node.tail.0;
                Some(v)
            }
            None => None,
        }
    }
}

impl List {
    pub fn nil() -> List {
        List(None)
    }

    pub fn cons(&self, v: Value) -> List {
        List(Some(Rc::new(Node {
            head: v,
            tail: self.clone(),
        })))
    }

    pub fn iter(&self) -> ListIter<'_> {
        ListIter { cur: &self.0 }
    }

    pub fn len(&self) -> usize {
        self.iter().count()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    pub fn head(&self) -> Option<&Value> {
        self.0.as_ref().map(|n| &n.head)
    }

    pub fn tail(&self) -> Option<List> {
        self.0.as_ref().map(|n| n.tail.clone())
    }

    /// New list `self ++ other`: copies the left spine, shares the right.
    pub fn append(&self, other: &List) -> List {
        let items: Vec<Value> = self.iter().cloned().collect();
        let mut out = other.clone();
        for v in items.into_iter().rev() {
            out = out.cons(v);
        }
        out
    }

    /// Order-preserving construction from a front-to-back item vector.
    pub fn from_vec(items: Vec<Value>) -> List {
        let mut out = List::nil();
        for v in items.into_iter().rev() {
            out = out.cons(v);
        }
        out
    }
}

impl PartialEq for List {
    fn eq(&self, other: &List) -> bool {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    if x != y {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
}

// Set operations over a duplicate-free cons list (newest element at the
// front), mirroring the interpreter's `LSet` exactly.

pub fn set_contains(s: &List, v: &Value) -> bool {
    s.iter().any(|x| x == v)
}

pub fn set_with(s: &List, v: &Value) -> List {
    if set_contains(s, v) {
        s.clone()
    } else {
        s.cons(v.clone())
    }
}

pub fn set_union(a: &List, b: &List) -> List {
    let mut out = b.clone();
    for v in a.iter() {
        out = set_with(&out, v);
    }
    out
}

pub fn set_intersection(a: &List, b: &List) -> List {
    let mut out = List::nil();
    for v in a.iter() {
        if set_contains(b, v) {
            out = set_with(&out, v);
        }
    }
    out
}

pub fn set_difference(a: &List, b: &List) -> List {
    let mut out = List::nil();
    for v in a.iter() {
        if !set_contains(b, v) {
            out = set_with(&out, v);
        }
    }
    out
}

pub fn set_is_subset(a: &List, b: &List) -> bool {
    a.iter().all(|v| set_contains(b, v))
}

/// Partial function as a cons list of `(key, value)` pairs; newest binding
/// first, shadowed bindings retained (like the interpreter's `PartialFn`).
pub struct PNode {
    key: Value,
    val: Value,
    tail: Pairs,
}

pub struct Pairs(Option<Rc<PNode>>);

impl Clone for Pairs {
    fn clone(&self) -> Pairs {
        Pairs(self.0.clone())
    }
}

impl Drop for Pairs {
    fn drop(&mut self) {
        let mut cur = self.0.take();
        while let Some(rc) = cur {
            match Rc::try_unwrap(rc) {
                Ok(mut node) => cur = node.tail.0.take(),
                Err(_) => break,
            }
        }
    }
}

pub struct PairIter<'a> {
    cur: &'a Option<Rc<PNode>>,
}

impl<'a> Iterator for PairIter<'a> {
    type Item = (&'a Value, &'a Value);

    fn next(&mut self) -> Option<(&'a Value, &'a Value)> {
        match self.cur {
            Some(node) => {
                let kv = (&node.key, &node.val);
                self.cur = &node.tail.0;
                Some(kv)
            }
            None => None,
        }
    }
}

impl Pairs {
    pub fn nil() -> Pairs {
        Pairs(None)
    }

    pub fn bind(&self, key: Value, val: Value) -> Pairs {
        Pairs(Some(Rc::new(PNode {
            key,
            val,
            tail: self.clone(),
        })))
    }

    pub fn iter(&self) -> PairIter<'_> {
        PairIter { cur: &self.0 }
    }

    /// All pairs, including shadowed ones, newest first.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn eval(&self, key: &Value) -> Option<&Value> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Distinct keys, newest first.
    pub fn domain(&self) -> Vec<&Value> {
        let mut out: Vec<&Value> = Vec::new();
        for (k, _) in self.iter() {
            if !out.contains(&k) {
                out.push(k);
            }
        }
        out
    }
}

#[derive(Clone)]
pub enum Value {
    Int(i64),
    Bool(bool),
    Sym(u32),
    Str(Rc<str>),
    List(List),
    Set(List),
    Map(Pairs),
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::Str(Rc::from(s))
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Sym(_) => "name",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Set(_) => "set",
            Value::Map(_) => "map",
        }
    }

    /// Append this value's encoding; same tags and orders as the
    /// interpreter (`eval::value::Value::encode`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Sym(n) => {
                out.push(2);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::List(l) => {
                out.push(4);
                out.extend_from_slice(&(l.len() as u32).to_le_bytes());
                for v in l.iter() {
                    v.encode(out);
                }
            }
            Value::Set(s) => {
                out.push(5);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                for v in s.iter() {
                    v.encode(out);
                }
            }
            Value::Map(m) => {
                out.push(6);
                out.extend_from_slice(&(m.len() as u32).to_le_bytes());
                for (k, v) in m.iter() {
                    k.encode(out);
                    v.encode(out);
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Set(a), Value::Set(b)) => set_is_subset(a, b) && set_is_subset(b, a),
            (Value::Map(a), Value::Map(b)) => {
                let da = a.domain();
                let db = b.domain();
                da.len() == db.len() && da.iter().all(|k| a.eval(k) == b.eval(k))
            }
            _ => false,
        }
    }
}

fn take(buf: &[u8], pos: &mut usize, n: usize) -> Result<usize, String> {
    if *pos + n > buf.len() {
        return Err(format!("value decode overrun at byte {}", *pos));
    }
    let at = *pos;
    *pos += n;
    Ok(at)
}

/// Decode one value; inverse of `encode`, with the interpreter's exact
/// reconstruction orders (sets re-collected front-to-back via `with`,
/// maps rebound in reverse so round-trips are stable).
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, String> {
    let at = take(buf, pos, 1)?;
    match buf[at] {
        0 => {
            let at = take(buf, pos, 8)?;
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[at..at + 8]);
            Ok(Value::Int(i64::from_le_bytes(b)))
        }
        1 => {
            let at = take(buf, pos, 1)?;
            match buf[at] {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(format!("bad bool byte {}", b)),
            }
        }
        2 => {
            let at = take(buf, pos, 4)?;
            Ok(Value::Sym(rd_u32(buf, at)))
        }
        3 => {
            let at = take(buf, pos, 4)?;
            let len = rd_u32(buf, at) as usize;
            let at = take(buf, pos, len)?;
            match std::str::from_utf8(&buf[at..at + len]) {
                Ok(s) => Ok(Value::str(s)),
                Err(_) => Err(format!("non-UTF-8 string at byte {}", at)),
            }
        }
        4 => {
            let at = take(buf, pos, 4)?;
            let count = rd_u32(buf, at) as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(decode_value(buf, pos)?);
            }
            Ok(Value::List(List::from_vec(items)))
        }
        5 => {
            let at = take(buf, pos, 4)?;
            let count = rd_u32(buf, at) as usize;
            let mut s = List::nil();
            for _ in 0..count {
                let v = decode_value(buf, pos)?;
                s = set_with(&s, &v);
            }
            Ok(Value::Set(s))
        }
        6 => {
            let at = take(buf, pos, 4)?;
            let count = rd_u32(buf, at) as usize;
            let mut pairs = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let k = decode_value(buf, pos)?;
                let v = decode_value(buf, pos)?;
                pairs.push((k, v));
            }
            let mut m = Pairs::nil();
            for (k, v) in pairs.into_iter().rev() {
                m = m.bind(k, v);
            }
            Ok(Value::Map(m))
        }
        t => Err(format!("bad value tag {} at byte {}", t, at)),
    }
}

// ---------------------------------------------------------------------------
// Records: symbol/production frames with sorted attribute values.
// ---------------------------------------------------------------------------

pub struct Record {
    pub is_prod: bool,
    pub id: u32,
    pub values: Vec<(u32, Value)>,
}

impl Record {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.is_prod as u8);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for (a, v) in &self.values {
            out.extend_from_slice(&a.to_le_bytes());
            v.encode(&mut out);
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Record, String> {
        let mut pos = 0usize;
        let at = take(buf, &mut pos, 1)?;
        let is_prod = match buf[at] {
            0 => false,
            1 => true,
            t => return Err(format!("bad record tag {}", t)),
        };
        let at = take(buf, &mut pos, 4)?;
        let id = rd_u32(buf, at);
        let at = take(buf, &mut pos, 2)?;
        let count = rd_u16(buf, at) as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let at = take(buf, &mut pos, 4)?;
            let a = rd_u32(buf, at);
            let v = decode_value(buf, &mut pos)?;
            values.push((a, v));
        }
        if pos != buf.len() {
            return Err(format!("{} trailing bytes after record", buf.len() - pos));
        }
        Ok(Record {
            is_prod,
            id,
            values,
        })
    }
}

/// Load decoded record values into a dense slot frame. Attributes that do
/// not belong to this symbol are dropped — the interpreter parks them in a
/// map where nothing ever reads them, so the observable behavior matches.
pub fn fill_slots(slots: &mut [Option<Value>], values: Vec<(u32, Value)>, attr_slot: &[usize]) {
    for (a, v) in values {
        if let Some(&s) = attr_slot.get(a as usize) {
            if s < slots.len() {
                slots[s] = Some(v);
            }
        }
    }
}

/// Collect the present values of an alive-attribute table (already sorted
/// by attribute id) — the compiled form of `NodeState::to_record`.
pub fn collect_alive(slots: &[Option<Value>], alive: &[(u32, usize)]) -> Vec<(u32, Value)> {
    let mut out = Vec::new();
    for &(a, s) in alive {
        if let Some(v) = &slots[s] {
            out.push((a, v.clone()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The 30 standard semantic functions, dispatched on pre-lowercased names.
// Success semantics are byte-for-byte the interpreter's (`eval::funcs`);
// error strings only need to *exist* (any error aborts the compiled run
// and the engine falls back to the interpreter).
// ---------------------------------------------------------------------------

pub fn bottom() -> Value {
    Value::str("\u{22A5}bottom")
}

fn arity(name: &str, args: &[Value], want: usize) -> Result<(), String> {
    if args.len() != want {
        return Err(format!(
            "{} expects {} argument(s), got {}",
            name,
            want,
            args.len()
        ));
    }
    Ok(())
}

fn want_int(name: &str, v: &Value) -> Result<i64, String> {
    match v {
        Value::Int(i) => Ok(*i),
        v => Err(format!("{} expects int, got {}", name, v.type_name())),
    }
}

fn want_bool(name: &str, v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        v => Err(format!("{} expects bool, got {}", name, v.type_name())),
    }
}

fn want_set<'a>(name: &str, v: &'a Value) -> Result<&'a List, String> {
    match v {
        Value::Set(s) => Ok(s),
        v => Err(format!("{} expects set, got {}", name, v.type_name())),
    }
}

fn want_list<'a>(name: &str, v: &'a Value) -> Result<&'a List, String> {
    match v {
        Value::List(l) => Ok(l),
        v => Err(format!("{} expects list, got {}", name, v.type_name())),
    }
}

fn want_map<'a>(name: &str, v: &'a Value) -> Result<&'a Pairs, String> {
    match v {
        Value::Map(m) => Ok(m),
        v => Err(format!("{} expects map, got {}", name, v.type_name())),
    }
}

pub fn call_func(name: &str, args: &[Value]) -> Result<Value, String> {
    match name {
        "emptyset" => {
            arity(name, args, 0)?;
            Ok(Value::Set(List::nil()))
        }
        "unionsetof" => {
            arity(name, args, 2)?;
            let s = want_set(name, &args[1])?;
            Ok(Value::Set(set_with(s, &args[0])))
        }
        "union" => {
            arity(name, args, 2)?;
            let a = want_set(name, &args[0])?;
            let b = want_set(name, &args[1])?;
            Ok(Value::Set(set_union(a, b)))
        }
        "isin" => {
            arity(name, args, 2)?;
            let s = want_set(name, &args[1])?;
            Ok(Value::Bool(set_contains(s, &args[0])))
        }
        "setsize" => {
            arity(name, args, 1)?;
            let s = want_set(name, &args[0])?;
            Ok(Value::Int(s.len() as i64))
        }
        "intersect" => {
            arity(name, args, 2)?;
            let a = want_set(name, &args[0])?;
            let b = want_set(name, &args[1])?;
            Ok(Value::Set(set_intersection(a, b)))
        }
        "difference" => {
            arity(name, args, 2)?;
            let a = want_set(name, &args[0])?;
            let b = want_set(name, &args[1])?;
            Ok(Value::Set(set_difference(a, b)))
        }
        "stripdigits" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::str(s.trim_end_matches(|c: char| c.is_ascii_digit()))),
                v => Err(format!("{} expects string, got {}", name, v.type_name())),
            }
        }
        "nulllist" => {
            arity(name, args, 0)?;
            Ok(Value::List(List::nil()))
        }
        "cons" => {
            arity(name, args, 2)?;
            let l = want_list(name, &args[1])?;
            Ok(Value::List(l.cons(args[0].clone())))
        }
        "cons2" => {
            arity(name, args, 3)?;
            let l = want_list(name, &args[2])?;
            let pair = List::from_vec(vec![args[0].clone(), args[1].clone()]);
            Ok(Value::List(l.cons(Value::List(pair))))
        }
        "cons3" => {
            arity(name, args, 4)?;
            let l = want_list(name, &args[3])?;
            let triple = List::from_vec(vec![args[0].clone(), args[1].clone(), args[2].clone()]);
            Ok(Value::List(l.cons(Value::List(triple))))
        }
        "head" => {
            arity(name, args, 1)?;
            let l = want_list(name, &args[0])?;
            match l.head() {
                Some(v) => Ok(v.clone()),
                None => Err(format!("{} expects non-empty list, got empty list", name)),
            }
        }
        "tail" => {
            arity(name, args, 1)?;
            let l = want_list(name, &args[0])?;
            Ok(Value::List(l.tail().unwrap_or_else(List::nil)))
        }
        "append" => {
            arity(name, args, 2)?;
            let a = want_list(name, &args[0])?;
            let b = want_list(name, &args[1])?;
            Ok(Value::List(a.append(b)))
        }
        "length" => {
            arity(name, args, 1)?;
            let l = want_list(name, &args[0])?;
            Ok(Value::Int(l.len() as i64))
        }
        "emptypf" => {
            arity(name, args, 0)?;
            Ok(Value::Map(Pairs::nil()))
        }
        "conspf" => {
            arity(name, args, 3)?;
            let m = want_map(name, &args[2])?;
            Ok(Value::Map(m.bind(args[0].clone(), args[1].clone())))
        }
        "evalpf" => {
            arity(name, args, 2)?;
            let m = want_map(name, &args[0])?;
            Ok(m.eval(&args[1]).cloned().unwrap_or_else(bottom))
        }
        "isbottom" => {
            arity(name, args, 1)?;
            Ok(Value::Bool(args[0] == bottom()))
        }
        "incrifzero" => {
            arity(name, args, 2)?;
            let x = want_int(name, &args[0])?;
            let y = want_int(name, &args[1])?;
            Ok(Value::Int(if x == 0 { y + 1 } else { y }))
        }
        "incriftrue" => {
            arity(name, args, 2)?;
            let b = want_bool(name, &args[0])?;
            let y = want_int(name, &args[1])?;
            Ok(Value::Int(if b { y + 1 } else { y }))
        }
        "max" => {
            arity(name, args, 2)?;
            let a = want_int(name, &args[0])?;
            let b = want_int(name, &args[1])?;
            Ok(Value::Int(a.max(b)))
        }
        "min" => {
            arity(name, args, 2)?;
            let a = want_int(name, &args[0])?;
            let b = want_int(name, &args[1])?;
            Ok(Value::Int(a.min(b)))
        }
        "mul" => {
            arity(name, args, 2)?;
            let a = want_int(name, &args[0])?;
            let b = want_int(name, &args[1])?;
            Ok(Value::Int(a.wrapping_mul(b)))
        }
        "div" => {
            arity(name, args, 2)?;
            let a = want_int(name, &args[0])?;
            let b = want_int(name, &args[1])?;
            if b == 0 {
                return Err(format!("{} expects non-zero divisor, got 0", name));
            }
            Ok(Value::Int(a / b))
        }
        "not" => {
            arity(name, args, 1)?;
            let b = want_bool(name, &args[0])?;
            Ok(Value::Bool(!b))
        }
        "pow2" => {
            arity(name, args, 1)?;
            let n = want_int(name, &args[0])?;
            if !(0..=62).contains(&n) {
                return Err(format!("{} expects exponent in 0..=62, got int", name));
            }
            Ok(Value::Int(1i64 << n))
        }
        "nullmsglist" => {
            arity(name, args, 0)?;
            Ok(Value::List(List::nil()))
        }
        "consmsg" => {
            arity(name, args, 4)?;
            let l = want_list(name, &args[3])?;
            let triple = List::from_vec(vec![args[0].clone(), args[1].clone(), args[2].clone()]);
            Ok(Value::List(l.cons(Value::List(triple))))
        }
        "mergemsgs" => {
            arity(name, args, 2)?;
            let a = want_list(name, &args[0])?;
            let b = want_list(name, &args[1])?;
            Ok(Value::List(a.append(b)))
        }
        _ => Err(format!("unknown function {}", name)),
    }
}

// ---------------------------------------------------------------------------
// Infix operators — mirror `machine::apply_binop`, including the detail
// that AND/OR evaluate both operands but skip the *type check* of the
// second when the first already decides the result.
// ---------------------------------------------------------------------------

pub fn bin_add(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Int(
        want_int("+", &a)?.wrapping_add(want_int("+", &b)?),
    ))
}

pub fn bin_sub(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Int(
        want_int("-", &a)?.wrapping_sub(want_int("-", &b)?),
    ))
}

pub fn bin_and(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Bool(want_bool("AND", &a)? && want_bool("AND", &b)?))
}

pub fn bin_or(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Bool(want_bool("OR", &a)? || want_bool("OR", &b)?))
}

pub fn bin_eq(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Bool(a == b))
}

pub fn bin_ne(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Bool(a != b))
}

pub fn bin_gt(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Bool(want_int(">", &a)? > want_int(">", &b)?))
}

pub fn bin_lt(a: Value, b: Value) -> Result<Value, String> {
    Ok(Value::Bool(want_int("<", &a)? < want_int("<", &b)?))
}
