//! The evaluator source emitter.
//!
//! Walks the same per-pass plans the runtime interprets and renders one
//! production-procedure per (production, pass) in the shape of the paper's
//! p.165 figure: read the limb record, then for each child in visit order
//! read it, evaluate its inherited attributes, recursively visit it, and
//! write it back; synthesized attributes are evaluated where the plan
//! scheduled them; the limb record is written last.
//!
//! Subsumed copy-rules are emitted as comments — `{ S1.A := S.A }` — just
//! as in the paper's §III example, and statically allocated attributes
//! read and write global variables with the `_QZP` save / `_ZQP`
//! new-value temporaries around child visits.
//!
//! Every emitted line is classified [`LineKind::Husk`] (traversal
//! skeleton), [`LineKind::Semantic`] (semantic-function code, including
//! save/restore), or [`LineKind::Comment`] (subsumed rules; zero code
//! bytes), which is what the pass-size and subsumption experiments count.

use crate::names;
use linguist_ag::analysis::Analysis;
use linguist_ag::expr::Expr;
use linguist_ag::grammar::{AttrClass, SymbolKind};
use linguist_ag::ids::{AttrOcc, OccPos, ProdId, RuleId, SymbolId};
use linguist_ag::plan::Step;
use std::collections::HashMap;

/// Output language flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// The paper's Pascal-like surface.
    Pascal,
    /// A Rust-like surface.
    Rust,
}

/// Classification of an emitted line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineKind {
    /// Traversal skeleton: procedure declaration, Get/Put/visit calls,
    /// begin/end.
    Husk,
    /// Semantic-function code, including global save/set/restore.
    Semantic,
    /// Subsumed copy-rules and annotations: zero code bytes.
    Comment,
}

/// One generated procedure with its size split.
#[derive(Clone, Debug)]
pub struct ProcSource {
    /// Procedure name.
    pub name: String,
    /// Full source text.
    pub source: String,
    /// Bytes of husk lines.
    pub husk_bytes: usize,
    /// Bytes of semantic lines.
    pub semantic_bytes: usize,
    /// Bytes of semantic lines that are save/set/restore of globals.
    pub save_restore_bytes: usize,
    /// Number of subsumed (commented-out) rules.
    pub subsumed_rules: usize,
}

struct Emitter<'a> {
    analysis: &'a Analysis,
    target: Target,
    lines: Vec<(String, LineKind)>,
    save_restore_bytes: usize,
    subsumed_rules: usize,
    indent: usize,
}

impl<'a> Emitter<'a> {
    fn push(&mut self, kind: LineKind, text: impl Into<String>) {
        let text = text.into();
        if kind == LineKind::Semantic {
            // save/restore tracked separately by caller via push_sr
        }
        self.lines
            .push((format!("{}{}", "  ".repeat(self.indent), text), kind));
    }

    fn push_sr(&mut self, text: impl Into<String>) {
        let text = text.into();
        self.save_restore_bytes += text.len() + 1;
        self.push(LineKind::Semantic, text);
    }

    fn comment(&mut self, text: &str) {
        let line = match self.target {
            Target::Pascal => format!("{{ {} }}", text),
            Target::Rust => format!("// {}", text),
        };
        self.push(LineKind::Comment, line);
    }
}

/// Generate the production-procedure for `prod` in pass `k`.
pub fn emit_procedure(analysis: &Analysis, prod: ProdId, pass: u16, target: Target) -> ProcSource {
    let g = &analysis.grammar;
    let p = g.production(prod);
    let plan = analysis.plans.plan(pass, prod);
    let mut e = Emitter {
        analysis,
        target,
        lines: Vec::new(),
        save_restore_bytes: 0,
        subsumed_rules: 0,
        indent: 0,
    };

    let name = names::proc_name(g, prod, pass);
    let lhs_var = names::occ_var(g, prod, OccPos::Lhs);
    match target {
        Target::Pascal => {
            e.push(
                LineKind::Husk,
                format!(
                    "procedure {} (VAR {} : {});",
                    name,
                    lhs_var,
                    names::node_type(g, p.lhs)
                ),
            );
            e.push(LineKind::Husk, "VAR");
            e.indent = 1;
            if let Some(l) = p.limb {
                e.push(
                    LineKind::Husk,
                    format!(
                        "{} : {};",
                        names::occ_var(g, prod, OccPos::Limb),
                        names::node_type(g, l)
                    ),
                );
            }
            for (i, &c) in p.rhs.iter().enumerate() {
                e.push(
                    LineKind::Husk,
                    format!(
                        "{} : {};",
                        names::occ_var(g, prod, OccPos::Rhs(i as u16)),
                        names::node_type(g, c)
                    ),
                );
            }
        }
        Target::Rust => {
            e.push(
                LineKind::Husk,
                format!(
                    "fn {}(ctx: &mut Apt, {}: &mut {}) {{",
                    name.to_ascii_lowercase(),
                    lhs_var.to_ascii_lowercase(),
                    names::node_type(g, p.lhs)
                ),
            );
            e.indent = 1;
        }
    }

    // Temp declarations for static save/new temporaries are gathered while
    // walking; collect the body first, then splice declarations.
    let decl_mark = e.lines.len();

    if target == Target::Pascal {
        e.indent = 0;
        e.push(LineKind::Husk, "begin");
        e.indent = 1;
    }

    if let Some(_l) = p.limb {
        let lv = names::occ_var(g, prod, OccPos::Limb);
        e.push(LineKind::Husk, get_call(target, &lv));
    } else {
        e.comment("production record read (no limb declared)");
    }

    // occurrence → rendered temp override (the PRE2_ZQP values).
    let mut temp_of: HashMap<AttrOcc, String> = HashMap::new();
    // (child, group-name) pending save/set before that child's visit.
    let mut pending: Vec<(u16, String)> = Vec::new();
    let mut temps: Vec<String> = Vec::new();

    for step in &plan.steps {
        match *step {
            Step::Get(i) => {
                let v = names::occ_var(g, prod, OccPos::Rhs(i));
                e.push(LineKind::Husk, get_call(target, &v));
            }
            Step::Eval(r) => {
                emit_rule(
                    &mut e,
                    prod,
                    pass,
                    r,
                    &mut temp_of,
                    &mut pending,
                    &mut temps,
                );
            }
            Step::Visit(i) => {
                // Flush save/set pairs for this child.
                let mine: Vec<String> = pending
                    .iter()
                    .filter(|(c, _)| *c == i)
                    .map(|(_, gname)| gname.clone())
                    .collect();
                for gname in &mine {
                    let sv = names::save_var(gname);
                    let gv = names::global_var(gname);
                    let nv = names::new_var(gname, i);
                    e.push_sr(assign(target, &sv, &gv));
                    e.push_sr(assign(target, &gv, &nv));
                }
                let child_sym = p.rhs[i as usize];
                let v = names::occ_var(g, prod, OccPos::Rhs(i));
                e.push(
                    LineKind::Husk,
                    visit_call(target, &names::dispatcher_name(g, child_sym, pass), &v),
                );
            }
            Step::Put(i) => {
                let v = names::occ_var(g, prod, OccPos::Rhs(i));
                e.push(LineKind::Husk, put_call(target, &v));
                // Restores after the write.
                let mine: Vec<String> = pending
                    .iter()
                    .filter(|(c, _)| *c == i)
                    .map(|(_, gname)| gname.clone())
                    .collect();
                for gname in mine.iter().rev() {
                    let sv = names::save_var(gname);
                    let gv = names::global_var(gname);
                    e.push_sr(assign(target, &gv, &sv));
                }
                pending.retain(|(c, _)| *c != i);
            }
        }
    }

    if p.limb.is_some() {
        let lv = names::occ_var(g, prod, OccPos::Limb);
        e.push(LineKind::Husk, put_call(target, &lv));
    }

    match target {
        Target::Pascal => {
            e.indent = 0;
            e.push(LineKind::Husk, format!("end; {{ {} }}", name));
        }
        Target::Rust => {
            e.indent = 0;
            e.push(LineKind::Husk, "}");
        }
    }

    // Splice temp declarations (semantic bytes: they exist only because of
    // static allocation and vary per pass).
    if !temps.is_empty() {
        let decls: Vec<(String, LineKind)> = temps
            .iter()
            .map(|t| {
                let line = match target {
                    Target::Pascal => format!("  {} : attrib_type;", t),
                    Target::Rust => format!("  let mut {}: Value;", t.to_ascii_lowercase()),
                };
                (line, LineKind::Semantic)
            })
            .collect();
        let tail = e.lines.split_off(decl_mark);
        e.lines.extend(decls);
        e.lines.extend(tail);
    }

    finish(e, name)
}

fn finish(e: Emitter<'_>, name: String) -> ProcSource {
    let mut husk = 0;
    let mut semantic = 0;
    let mut source = String::new();
    for (line, kind) in &e.lines {
        match kind {
            LineKind::Husk => husk += line.len() + 1,
            LineKind::Semantic => semantic += line.len() + 1,
            LineKind::Comment => {}
        }
        source.push_str(line);
        source.push('\n');
    }
    ProcSource {
        name,
        source,
        husk_bytes: husk,
        semantic_bytes: semantic,
        save_restore_bytes: e.save_restore_bytes,
        subsumed_rules: e.subsumed_rules,
    }
}

fn emit_rule(
    e: &mut Emitter<'_>,
    prod: ProdId,
    pass: u16,
    r: RuleId,
    temp_of: &mut HashMap<AttrOcc, String>,
    pending: &mut Vec<(u16, String)>,
    temps: &mut Vec<String>,
) {
    let analysis = e.analysis;
    let g = &analysis.grammar;
    let rule = g.rule(r);
    let sub = &analysis.subsumption;

    if analysis.subsumption.is_subsumed(r) {
        let t = rule.targets[0];
        let s = rule.copy_source().expect("subsumed rules are copies");
        e.comment(&format!(
            "{} := {}",
            occ_field(analysis, prod, t),
            occ_field(analysis, prod, s)
        ));
        e.subsumed_rules += 1;
        return;
    }

    // Destination renderer per target.
    let dest = |e: &mut Emitter<'_>,
                temp_of: &mut HashMap<AttrOcc, String>,
                pending: &mut Vec<(u16, String)>,
                temps: &mut Vec<String>,
                t: AttrOcc|
     -> String {
        let is_static = sub.is_static(t.attr) && analysis.passes.pass_of(t.attr) == pass;
        if is_static {
            let gname = sub.group_name(sub.group_of(t.attr)).to_owned();
            match t.pos {
                OccPos::Rhs(j) => {
                    // New-value temporary; save/set deferred to the visit.
                    let nv = names::new_var(&gname, j);
                    if !temps.contains(&nv) {
                        temps.push(nv.clone());
                        temps.push(names::save_var(&gname));
                    }
                    if g.symbol(g.production(prod).rhs[j as usize]).kind == SymbolKind::Nonterminal
                    {
                        pending.push((j, gname));
                    } else {
                        // Terminal child: no visit, assign the global
                        // directly after computing (value flows into the
                        // record at Put).
                        let _ = &e;
                    }
                    temp_of.insert(t, nv.clone());
                    nv
                }
                OccPos::Lhs => names::global_var(&gname),
                OccPos::Limb => occ_field(analysis, prod, t),
            }
        } else {
            occ_field(analysis, prod, t)
        }
    };

    match (&rule.expr, rule.targets.len()) {
        (
            Expr::If {
                branches,
                otherwise,
            },
            n,
        ) if n > 1 => {
            // Figure-5 multi-target conditional: a statement-level if with
            // pairwise assignments in each arm.
            for (bi, (cond, arm)) in branches.iter().enumerate() {
                let kw = if bi == 0 {
                    kw_if(e.target)
                } else {
                    kw_elsif(e.target)
                };
                let cline = format!(
                    "{} {} {}",
                    kw,
                    render_expr(analysis, prod, pass, cond, temp_of),
                    kw_then(e.target)
                );
                e.push(LineKind::Semantic, cline);
                e.indent += 1;
                for (t, ex) in rule.targets.iter().zip(arm.iter()) {
                    let d = dest(e, temp_of, pending, temps, *t);
                    let rhs = render_expr(analysis, prod, pass, ex, temp_of);
                    e.push(LineKind::Semantic, assign(e.target, &d, &rhs));
                }
                e.indent -= 1;
            }
            e.push(LineKind::Semantic, kw_else(e.target).to_owned());
            e.indent += 1;
            for (t, ex) in rule.targets.iter().zip(otherwise.iter()) {
                let d = dest(e, temp_of, pending, temps, *t);
                let rhs = render_expr(analysis, prod, pass, ex, temp_of);
                e.push(LineKind::Semantic, assign(e.target, &d, &rhs));
            }
            e.indent -= 1;
            e.push(LineKind::Semantic, kw_endif(e.target).to_owned());
        }
        (expr, n) => {
            let first = dest(e, temp_of, pending, temps, rule.targets[0]);
            let rhs = render_expr(analysis, prod, pass, expr, temp_of);
            e.push(LineKind::Semantic, assign(e.target, &first, &rhs));
            for t in rule.targets.iter().skip(1).take(n - 1) {
                let d = dest(e, temp_of, pending, temps, *t);
                e.push(LineKind::Semantic, assign(e.target, &d, &first));
            }
        }
    }
}

/// Render an argument/target occurrence as a record-field reference.
fn occ_field(analysis: &Analysis, prod: ProdId, occ: AttrOcc) -> String {
    let g = &analysis.grammar;
    format!(
        "{}.{}",
        names::occ_var(g, prod, occ.pos),
        g.attr_name(occ.attr).to_ascii_uppercase()
    )
}

/// Render an expression; static same-pass occurrences read globals (or the
/// new-value temporaries registered in `temp_of`).
pub fn render_expr(
    analysis: &Analysis,
    prod: ProdId,
    pass: u16,
    expr: &Expr,
    temp_of: &HashMap<AttrOcc, String>,
) -> String {
    let g = &analysis.grammar;
    let sub = &analysis.subsumption;
    match expr {
        Expr::Occ(o) => {
            if let Some(t) = temp_of.get(o) {
                return t.clone();
            }
            let is_static = sub.is_static(o.attr) && analysis.passes.pass_of(o.attr) == pass;
            let cls = g.attr(o.attr).class;
            // Same-pass static flow reads the global: LHS inherited comes
            // from the parent, child synthesized comes back from the visit.
            let via_global = is_static
                && matches!(
                    (o.pos, cls),
                    (OccPos::Lhs, AttrClass::Inherited) | (OccPos::Rhs(_), AttrClass::Synthesized)
                );
            if via_global {
                names::global_var(sub.group_name(sub.group_of(o.attr)))
            } else {
                occ_field(analysis, prod, *o)
            }
        }
        Expr::Int(i) => i.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Str(s) => format!("'{}'", s),
        Expr::Const(n) => g.resolve(*n).to_ascii_uppercase(),
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| render_expr(analysis, prod, pass, a, temp_of))
                .collect();
            format!(
                "{}({})",
                g.resolve(*func).to_ascii_uppercase(),
                rendered.join(", ")
            )
        }
        Expr::Binop { op, lhs, rhs } => format!(
            "({} {} {})",
            render_expr(analysis, prod, pass, lhs, temp_of),
            op,
            render_expr(analysis, prod, pass, rhs, temp_of)
        ),
        Expr::If {
            branches,
            otherwise,
        } => {
            // Value-position conditional (single-width arms).
            let mut out = String::new();
            for (cond, arm) in branches {
                out.push_str(&format!(
                    "IF({}, {}, ",
                    render_expr(analysis, prod, pass, cond, temp_of),
                    render_expr(analysis, prod, pass, &arm[0], temp_of)
                ));
            }
            out.push_str(&render_expr(analysis, prod, pass, &otherwise[0], temp_of));
            for _ in branches {
                out.push(')');
            }
            out
        }
    }
}

fn get_call(t: Target, var: &str) -> String {
    match t {
        Target::Pascal => format!("GetNode{}({});", var, var),
        Target::Rust => format!("let mut {} = ctx.get_node();", var.to_ascii_lowercase()),
    }
}

fn put_call(t: Target, var: &str) -> String {
    match t {
        Target::Pascal => format!("PutNode{}({});", var, var),
        Target::Rust => format!("ctx.put_node(&{});", var.to_ascii_lowercase()),
    }
}

fn visit_call(t: Target, dispatcher: &str, var: &str) -> String {
    match t {
        Target::Pascal => format!("{}({});", dispatcher, var),
        Target::Rust => format!(
            "{}(ctx, &mut {});",
            dispatcher.to_ascii_lowercase(),
            var.to_ascii_lowercase()
        ),
    }
}

fn assign(t: Target, dst: &str, src: &str) -> String {
    match t {
        Target::Pascal => format!("{} := {};", dst, src),
        Target::Rust => format!("{} = {};", dst.to_ascii_lowercase(), src),
    }
}

fn kw_if(t: Target) -> &'static str {
    match t {
        Target::Pascal => "if",
        Target::Rust => "if",
    }
}
fn kw_elsif(t: Target) -> &'static str {
    match t {
        Target::Pascal => "elsif",
        Target::Rust => "} else if",
    }
}
fn kw_then(t: Target) -> &'static str {
    match t {
        Target::Pascal => "then",
        Target::Rust => "{",
    }
}
fn kw_else(t: Target) -> &'static str {
    match t {
        Target::Pascal => "else",
        Target::Rust => "} else {",
    }
}
fn kw_endif(t: Target) -> &'static str {
    match t {
        Target::Pascal => "endif;",
        Target::Rust => "}",
    }
}

/// Generate the per-symbol dispatcher ("the parser of the stream": reads
/// the production tag and calls the production-procedure).
pub fn emit_dispatcher(
    analysis: &Analysis,
    sym: SymbolId,
    pass: u16,
    target: Target,
) -> ProcSource {
    let g = &analysis.grammar;
    let mut e = Emitter {
        analysis,
        target,
        lines: Vec::new(),
        save_restore_bytes: 0,
        subsumed_rules: 0,
        indent: 0,
    };
    let name = names::dispatcher_name(g, sym, pass);
    let prods: Vec<ProdId> = g
        .productions()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.lhs == sym)
        .map(|(i, _)| ProdId(i as u32))
        .collect();
    match target {
        Target::Pascal => {
            e.push(
                LineKind::Husk,
                format!(
                    "procedure {} (VAR NODE : {});",
                    name,
                    names::node_type(g, sym)
                ),
            );
            e.push(LineKind::Husk, "begin");
            e.indent = 1;
            e.push(LineKind::Husk, "case PeekProduction() of");
            e.indent = 2;
            for p in &prods {
                e.push(
                    LineKind::Husk,
                    format!("{}: {}(NODE);", p.0, names::proc_name(g, *p, pass)),
                );
            }
            e.indent = 1;
            e.push(LineKind::Husk, "end;");
            e.indent = 0;
            e.push(LineKind::Husk, "end;");
        }
        Target::Rust => {
            e.push(
                LineKind::Husk,
                format!(
                    "fn {}(ctx: &mut Apt, node: &mut {}) {{",
                    name.to_ascii_lowercase(),
                    names::node_type(g, sym)
                ),
            );
            e.indent = 1;
            e.push(LineKind::Husk, "match ctx.peek_production() {");
            e.indent = 2;
            for p in &prods {
                e.push(
                    LineKind::Husk,
                    format!(
                        "{} => {}(ctx, node),",
                        p.0,
                        names::proc_name(g, *p, pass).to_ascii_lowercase()
                    ),
                );
            }
            e.push(LineKind::Husk, "_ => unreachable!(),");
            e.indent = 1;
            e.push(LineKind::Husk, "}");
            e.indent = 0;
            e.push(LineKind::Husk, "}");
        }
    }
    finish(e, name)
}
