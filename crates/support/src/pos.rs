//! Source positions and spans.
//!
//! The paper's intrinsic attributes record "the location in the source of
//! the text that corresponds to a leaf of the APT"; diagnostics carry a line
//! (`commaNT.LINE` in the p.165 production). [`Pos`] and [`Span`] are that
//! vocabulary.

use std::fmt;

/// A 1-based line/column position plus a 0-based byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// 0-based byte offset into the source.
    pub offset: u32,
}

impl Pos {
    /// The start of a source file: line 1, column 1, offset 0.
    pub fn start() -> Pos {
        Pos {
            line: 1,
            col: 1,
            offset: 0,
        }
    }

    /// Advance past one character, tracking newlines.
    pub fn advance(self, c: char) -> Pos {
        if c == '\n' {
            Pos {
                line: self.line + 1,
                col: 1,
                offset: self.offset + c.len_utf8() as u32,
            }
        } else {
            Pos {
                line: self.line,
                col: self.col + 1,
                offset: self.offset + c.len_utf8() as u32,
            }
        }
    }
}

impl Default for Pos {
    fn default() -> Pos {
        Pos::start()
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open range of source text `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// First position covered.
    pub start: Pos,
    /// Position one past the last character covered.
    pub end: Pos,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: Pos, end: Pos) -> Span {
        Span { start, end }
    }

    /// The empty span at a single position.
    pub fn point(p: Pos) -> Span {
        Span { start: p, end: p }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: if self.start <= other.start {
                self.start
            } else {
                other.start
            },
            end: if self.end >= other.end {
                self.end
            } else {
                other.end
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        (self.end.offset - self.start.offset) as usize
    }

    /// Whether the span covers no characters.
    pub fn is_empty(&self) -> bool {
        self.start.offset == self.end.offset
    }

    /// Slice this span out of the source it was produced from.
    pub fn slice<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start.offset as usize..self.end.offset as usize]
    }
}

impl Default for Span {
    fn default() -> Span {
        Span::point(Pos::start())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_tracks_lines_and_columns() {
        let mut p = Pos::start();
        for c in "ab\ncd".chars() {
            p = p.advance(c);
        }
        assert_eq!(p.line, 2);
        assert_eq!(p.col, 3);
        assert_eq!(p.offset, 5);
    }

    #[test]
    fn merge_covers_both() {
        let mut p = Pos::start();
        let a0 = p;
        p = p.advance('x');
        let a1 = p;
        p = p.advance('y');
        let b1 = p;
        let a = Span::new(a0, a1);
        let b = Span::new(a1, b1);
        let m = a.merge(b);
        assert_eq!(m.start, a0);
        assert_eq!(m.end, b1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn slice_extracts_text() {
        let src = "hello world";
        let mut p = Pos::start();
        for _ in 0..5 {
            p = p.advance('h');
        }
        let s = Span::new(Pos::start(), p);
        assert_eq!(s.slice(src), "hello");
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(Pos::start()).is_empty());
    }
}
