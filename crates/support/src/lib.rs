//! Support substrate for the LINGUIST-86 reproduction.
//!
//! The paper (§V) lists, among the pieces of the translator-writing system,
//! "a package that implements a name-table for identifiers, and a package
//! that supports list-processing". This crate is those two packages, plus
//! the small shared vocabulary every other crate needs: source positions,
//! diagnostics, and byte-size accounting for the memory-budget experiments.
//!
//! * [`intern`] — the name table: cheap interned [`intern::Name`] ids for
//!   identifier text.
//! * [`list`] — persistent cons lists (the paper represents "sets,
//!   sequences, and partial functions" as linked lists in its 48 KB heap).
//! * [`set`] — small persistent sets built on those lists.
//! * [`pfunc`] — partial functions (association lists) as used by the
//!   LINGUIST-86 AG itself (`EvalPF`, `consPF` in Figure 5).
//! * [`pos`] — line/column positions and spans.
//! * [`diag`] — severity-tagged diagnostics collected per overlay.
//! * [`size`] — [`size::ByteSized`] trait and a high-water-mark
//!   [`size::Meter`] used to reproduce the paper's 48 KB dynamic-data story.
//! * [`json`] — the workspace's single hand-rolled JSON implementation
//!   (escape/render/parse), shared by the `--profile=json` report, the
//!   benchmark snapshots, and the `linguist-serve` wire protocol.
//! * [`fnv`] — the workspace's single FNV-1a 64-bit content hash,
//!   shared by the serve tier's grammar handles, the router's hash
//!   ring, and the code generator's compiled-artifact keys.
//!
//! # Example
//!
//! ```
//! use linguist_support::intern::NameTable;
//! use linguist_support::list::List;
//!
//! let mut names = NameTable::new();
//! let a = names.intern("alpha");
//! assert_eq!(names.resolve(a), "alpha");
//!
//! let xs: List<i32> = List::nil().cons(2).cons(1);
//! assert_eq!(xs.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
//! ```

pub mod diag;
pub mod fnv;
pub mod intern;
pub mod json;
pub mod list;
pub mod pfunc;
pub mod pos;
pub mod set;
pub mod size;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use intern::{Name, NameTable};
pub use json::Json;
pub use list::List;
pub use pfunc::PartialFn;
pub use pos::{Pos, Span};
pub use set::LSet;
