//! Small persistent sets built on cons lists.
//!
//! LINGUIST-86 represents sets as linked lists; its semantic-function
//! library includes `union$setof` (add one element), `union` (set union) and
//! `IsIn` (membership), all visible in the paper's p.165 production. [`LSet`]
//! provides exactly those operations with the same persistent-sharing
//! behaviour.

use crate::list::List;
use std::fmt;

/// A persistent set represented as a duplicate-free cons list.
///
/// Operations are O(n)/O(n²) like the original linked-list representation —
/// these sets are small (attribute-occurrence sets, function sets) and the
/// point is fidelity to the evaluation model, not asymptotics.
///
/// # Example
///
/// ```
/// use linguist_support::set::LSet;
/// let s = LSet::empty().with(1).with(2).with(1);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(&2));
/// ```
#[derive(Clone)]
pub struct LSet<T> {
    items: List<T>,
}

impl<T: PartialEq + Clone> LSet<T> {
    /// The empty set.
    pub fn empty() -> LSet<T> {
        LSet { items: List::nil() }
    }

    /// The paper's `union$setof`: `self ∪ {value}`. Returns a set sharing
    /// `self`'s spine when `value` is already present.
    pub fn with(&self, value: T) -> LSet<T> {
        if self.contains(&value) {
            self.clone()
        } else {
            LSet {
                items: self.items.cons(value),
            }
        }
    }

    /// The paper's `IsIn`: membership test.
    pub fn contains(&self, value: &T) -> bool {
        self.items.iter().any(|v| v == value)
    }

    /// The paper's `union`: `self ∪ other`.
    pub fn union(&self, other: &LSet<T>) -> LSet<T> {
        let mut out = other.clone();
        for v in self.items.iter() {
            out = out.with(v.clone());
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &LSet<T>) -> LSet<T> {
        let mut out = LSet::empty();
        for v in self.items.iter() {
            if other.contains(v) {
                out = out.with(v.clone());
            }
        }
        out
    }

    /// Elements of `self` not in `other`.
    pub fn difference(&self, other: &LSet<T>) -> LSet<T> {
        let mut out = LSet::empty();
        for v in self.items.iter() {
            if !other.contains(v) {
                out = out.with(v.clone());
            }
        }
        out
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &LSet<T>) -> bool {
        self.items.iter().all(|v| other.contains(v))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over elements (most recently added first).
    pub fn iter(&self) -> crate::list::Iter<'_, T> {
        self.items.iter()
    }

    /// The underlying list.
    pub fn as_list(&self) -> &List<T> {
        &self.items
    }
}

impl<T: PartialEq + Clone> Default for LSet<T> {
    fn default() -> LSet<T> {
        LSet::empty()
    }
}

impl<T: PartialEq + Clone> PartialEq for LSet<T> {
    fn eq(&self, other: &LSet<T>) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }
}

impl<T: Eq + Clone> Eq for LSet<T> {}

impl<T: fmt::Debug> fmt::Debug for LSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl<T: PartialEq + Clone> FromIterator<T> for LSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> LSet<T> {
        let mut out = LSet::empty();
        for v in iter {
            out = out.with(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_deduplicates() {
        let s: LSet<i32> = [1, 2, 2, 3, 1].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn with_existing_shares_spine() {
        let s = LSet::empty().with(1).with(2);
        let t = s.with(1);
        assert!(s.as_list().same_spine(t.as_list()));
    }

    #[test]
    fn union_contains_both() {
        let a: LSet<i32> = [1, 2].into_iter().collect();
        let b: LSet<i32> = [2, 3].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        for v in [1, 2, 3] {
            assert!(u.contains(&v));
        }
    }

    #[test]
    fn equality_ignores_order() {
        let a: LSet<i32> = [1, 2, 3].into_iter().collect();
        let b: LSet<i32> = [3, 1, 2].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn intersection_and_difference() {
        let a: LSet<i32> = [1, 2, 3, 4].into_iter().collect();
        let b: LSet<i32> = [3, 4, 5].into_iter().collect();
        assert_eq!(a.intersection(&b), [3, 4].into_iter().collect());
        assert_eq!(a.difference(&b), [1, 2].into_iter().collect());
    }

    #[test]
    fn subset_relation() {
        let a: LSet<i32> = [1, 2].into_iter().collect();
        let b: LSet<i32> = [1, 2, 3].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(LSet::<i32>::empty().is_subset(&a));
    }
}
