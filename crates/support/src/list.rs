//! Persistent cons lists — the list-processing package.
//!
//! The paper stores "the linked lists that represent sets, sequences, and
//! partial functions" in its dynamic-data area. Semantic functions are pure,
//! so list values must be shareable without copying: a classic persistent
//! cons list with `Arc`-shared tails (`cons` is O(1) and never mutates).
//! Atomic reference counts make lists `Send + Sync`, so evaluator values
//! built on them can cross threads in the parallel batch driver.

use std::fmt;
use std::sync::Arc;

/// A persistent singly linked list.
///
/// `cons` prepends in O(1); tails are shared. This is the value
/// representation used by LINGUIST-86 semantic functions such as
/// `cons$msg`, `cons2`, `cons3`, and `merge$msgs` in the paper's figures.
///
/// # Example
///
/// ```
/// use linguist_support::list::List;
/// let xs = List::nil().cons(3).cons(2).cons(1);
/// assert_eq!(xs.len(), 3);
/// assert_eq!(xs.head(), Some(&1));
/// ```
pub struct List<T> {
    node: Option<Arc<Node<T>>>,
}

struct Node<T> {
    head: T,
    tail: List<T>,
}

impl<T> List<T> {
    /// The empty list.
    pub fn nil() -> List<T> {
        List { node: None }
    }

    /// Prepend `value`, sharing `self` as the tail.
    pub fn cons(&self, value: T) -> List<T> {
        List {
            node: Some(Arc::new(Node {
                head: value,
                tail: self.clone(),
            })),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.node.is_none()
    }

    /// The first element, if any.
    pub fn head(&self) -> Option<&T> {
        self.node.as_deref().map(|n| &n.head)
    }

    /// The list after the first element, if any.
    pub fn tail(&self) -> Option<&List<T>> {
        self.node.as_deref().map(|n| &n.tail)
    }

    /// Number of elements (O(n)).
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Iterate front to back.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { cur: self }
    }

    /// Pointer equality of the underlying first node — O(1) sharing check,
    /// used by tests asserting tails are shared rather than copied.
    pub fn same_spine(&self, other: &List<T>) -> bool {
        match (&self.node, &other.node) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl<T: Clone> List<T> {
    /// Append `other` after `self` (copies `self`'s spine, shares `other`).
    /// This is the paper's `merge$msgs` shape.
    pub fn append(&self, other: &List<T>) -> List<T> {
        let mut items: Vec<T> = self.iter().cloned().collect();
        let mut out = other.clone();
        while let Some(v) = items.pop() {
            out = out.cons(v);
        }
        out
    }

    /// Reverse the list.
    pub fn reversed(&self) -> List<T> {
        let mut out = List::nil();
        for v in self.iter() {
            out = out.cons(v.clone());
        }
        out
    }

    /// Collect into a `Vec` front to back.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

impl<T> Clone for List<T> {
    fn clone(&self) -> List<T> {
        List {
            node: self.node.clone(),
        }
    }
}

impl<T> Default for List<T> {
    fn default() -> List<T> {
        List::nil()
    }
}

impl<T: PartialEq> PartialEq for List<T> {
    fn eq(&self, other: &List<T>) -> bool {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if x == y => continue,
                _ => return false,
            }
        }
    }
}

impl<T: Eq> Eq for List<T> {}

impl<T: fmt::Debug> fmt::Debug for List<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<T> for List<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> List<T> {
        let items: Vec<T> = iter.into_iter().collect();
        let mut out = List::nil();
        for v in items.into_iter().rev() {
            out = out.cons(v);
        }
        out
    }
}

/// Iterator over list elements, front to back.
pub struct Iter<'a, T> {
    cur: &'a List<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.cur.node.as_deref()?;
        self.cur = &node.tail;
        Some(&node.head)
    }
}

impl<T> Drop for List<T> {
    // Iterative drop: a long shared spine would otherwise recurse and can
    // blow the stack on the deep lists the evaluator builds.
    fn drop(&mut self) {
        let mut next = self.node.take();
        while let Some(rc) = next {
            match Arc::try_unwrap(rc) {
                Ok(mut node) => next = node.tail.node.take(),
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cons_and_iter() {
        let xs: List<i32> = [1, 2, 3].into_iter().collect();
        assert_eq!(xs.to_vec(), vec![1, 2, 3]);
        assert_eq!(xs.head(), Some(&1));
        assert_eq!(xs.tail().unwrap().to_vec(), vec![2, 3]);
    }

    #[test]
    fn cons_shares_tail() {
        let base: List<i32> = [9].into_iter().collect();
        let a = base.cons(1);
        let b = base.cons(2);
        assert!(a.tail().unwrap().same_spine(&base));
        assert!(b.tail().unwrap().same_spine(&base));
        assert!(!a.same_spine(&b));
    }

    #[test]
    fn append_shares_right_operand() {
        let left: List<i32> = [1, 2].into_iter().collect();
        let right: List<i32> = [3, 4].into_iter().collect();
        let both = left.append(&right);
        assert_eq!(both.to_vec(), vec![1, 2, 3, 4]);
        assert!(both.tail().unwrap().tail().unwrap().same_spine(&right));
    }

    #[test]
    fn equality_is_structural() {
        let a: List<i32> = [1, 2, 3].into_iter().collect();
        let b: List<i32> = [1, 2, 3].into_iter().collect();
        let c: List<i32> = [1, 2].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reversed_reverses() {
        let a: List<i32> = [1, 2, 3].into_iter().collect();
        assert_eq!(a.reversed().to_vec(), vec![3, 2, 1]);
        assert_eq!(List::<i32>::nil().reversed().to_vec(), Vec::<i32>::new());
    }

    #[test]
    fn deep_list_drops_without_overflow() {
        let mut xs = List::nil();
        for i in 0..200_000 {
            xs = xs.cons(i);
        }
        assert_eq!(xs.len(), 200_000);
        drop(xs); // must not overflow the stack
    }

    #[test]
    fn debug_is_nonempty() {
        let xs: List<i32> = List::nil();
        assert_eq!(format!("{:?}", xs), "[]");
    }
}
