//! Diagnostics: the error/message streams of the overlay pipeline.
//!
//! LINGUIST-86's first overlay "writes a list of all syntactic errors to
//! another intermediate file"; later overlays collect "a sequence of
//! semantic messages that will be used to generate the listing". The
//! [`Diagnostics`] sink is that stream, kept sorted by source line so the
//! listing generator can interleave messages with source text.

use crate::pos::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note (appears in the listing only).
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Prevents evaluator generation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One message destined for the listing file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Where in the source the message anchors.
    pub span: Span,
    /// Which overlay produced it (1-based, as in the paper's seven-overlay
    /// structure); 0 for messages not tied to an overlay.
    pub overlay: u8,
    /// Stable machine-readable code (e.g. `AG001`); `None` for messages
    /// outside the lint registry.
    pub code: Option<&'static str>,
    /// Human-readable text.
    pub message: String,
}

impl Diagnostic {
    /// Attach a stable code to this diagnostic.
    pub fn with_code(mut self, code: &'static str) -> Diagnostic {
        self.code = Some(code);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.code {
            Some(code) => write!(
                f,
                "{}: {}[{}]: {}",
                self.span.start, self.severity, code, self.message
            ),
            None => write!(
                f,
                "{}: {}: {}",
                self.span.start, self.severity, self.message
            ),
        }
    }
}

/// An accumulating sink of diagnostics.
///
/// # Example
///
/// ```
/// use linguist_support::diag::{Diagnostics, Severity};
/// use linguist_support::pos::Span;
///
/// let mut d = Diagnostics::new();
/// d.error(Span::default(), 1, "unexpected token");
/// assert!(d.has_errors());
/// assert_eq!(d.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Record an error.
    pub fn error(&mut self, span: Span, overlay: u8, message: impl Into<String>) {
        self.push(Diagnostic {
            severity: Severity::Error,
            span,
            overlay,
            code: None,
            message: message.into(),
        });
    }

    /// Record a warning.
    pub fn warning(&mut self, span: Span, overlay: u8, message: impl Into<String>) {
        self.push(Diagnostic {
            severity: Severity::Warning,
            span,
            overlay,
            code: None,
            message: message.into(),
        });
    }

    /// Record a note.
    pub fn note(&mut self, span: Span, overlay: u8, message: impl Into<String>) {
        self.push(Diagnostic {
            severity: Severity::Note,
            span,
            overlay,
            code: None,
            message: message.into(),
        });
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics recorded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Diagnostics sorted by source position (the order the listing
    /// generator wants). The sort is total and stable: ties on the span
    /// break on severity (errors last, so they end a line's message
    /// block), then on the stable code, then on insertion order.
    pub fn sorted_for_listing(&self) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = self.items.iter().collect();
        v.sort_by_key(|d| {
            (
                d.span.start.line,
                d.span.start.col,
                d.span.end.line,
                d.span.end.col,
                d.severity,
                d.code,
            )
        });
        v
    }

    /// Merge another sink's diagnostics into this one.
    pub fn extend_from(&mut self, other: &Diagnostics) {
        self.items.extend(other.items.iter().cloned());
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::{Pos, Span};

    fn at_line(line: u32) -> Span {
        Span::point(Pos {
            line,
            col: 1,
            offset: 0,
        })
    }

    #[test]
    fn has_errors_only_for_errors() {
        let mut d = Diagnostics::new();
        d.note(at_line(1), 1, "n");
        d.warning(at_line(2), 1, "w");
        assert!(!d.has_errors());
        d.error(at_line(3), 2, "e");
        assert!(d.has_errors());
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn listing_order_sorts_by_line() {
        let mut d = Diagnostics::new();
        d.error(at_line(5), 1, "later");
        d.error(at_line(2), 1, "earlier");
        let sorted = d.sorted_for_listing();
        assert_eq!(sorted[0].message, "earlier");
        assert_eq!(sorted[1].message, "later");
    }

    #[test]
    fn listing_order_breaks_equal_span_ties_by_severity_then_code() {
        let mut d = Diagnostics::new();
        // All four share one span; insertion order is deliberately
        // scrambled relative to the expected (severity, code) order.
        d.error(at_line(4), 1, "e");
        d.push(Diagnostic {
            severity: Severity::Warning,
            span: at_line(4),
            overlay: 1,
            code: Some("AG009"),
            message: "w-late".into(),
        });
        d.push(Diagnostic {
            severity: Severity::Warning,
            span: at_line(4),
            overlay: 1,
            code: Some("AG001"),
            message: "w-early".into(),
        });
        d.note(at_line(4), 1, "n");
        let msgs: Vec<&str> = d
            .sorted_for_listing()
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        // Note < Warning < Error; equal severity orders by code, with
        // code-less entries first (None < Some).
        assert_eq!(msgs, vec!["n", "w-early", "w-late", "e"]);
        // And the sort must be stable: identical entries keep insertion
        // order.
        let mut s = Diagnostics::new();
        s.warning(at_line(7), 1, "first");
        s.warning(at_line(7), 1, "second");
        let msgs: Vec<&str> = s
            .sorted_for_listing()
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(msgs, vec!["first", "second"]);
    }

    #[test]
    fn display_includes_code_when_present() {
        let d = Diagnostic {
            severity: Severity::Warning,
            span: at_line(3),
            overlay: 0,
            code: Some("AG001"),
            message: "dead attribute".into(),
        };
        let text = d.to_string();
        assert!(text.contains("warning[AG001]"));
        assert!(text.contains("dead attribute"));
    }

    #[test]
    fn display_mentions_severity() {
        let mut d = Diagnostics::new();
        d.warning(at_line(1), 1, "odd");
        let text = format!("{}", d.iter().next().unwrap());
        assert!(text.contains("warning"));
        assert!(text.contains("odd"));
    }

    #[test]
    fn extend_from_merges() {
        let mut a = Diagnostics::new();
        a.note(at_line(1), 1, "a");
        let mut b = Diagnostics::new();
        b.error(at_line(2), 2, "b");
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert!(a.has_errors());
    }
}
