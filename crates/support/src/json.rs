//! Hand-rolled JSON: one escape routine, one renderer, one parser.
//!
//! The toolchain deliberately carries no serialization dependency (the
//! build environment is offline), so every JSON producer in the
//! workspace — the `--profile=json` report, the benchmark snapshots,
//! and the `linguist-serve` wire protocol — used to hand-assemble
//! strings with private copies of the same escaping logic. This module
//! is the single shared implementation:
//!
//! * [`escape`] / [`number`] — the string-building half, for renderers
//!   that assemble JSON incrementally into a `String`;
//! * [`Json`] — a small value tree with a strict parser
//!   ([`Json::parse`]) and a canonical renderer (`Display`), for code
//!   that needs to *read* JSON (the service protocol) or build nested
//!   replies without worrying about commas and braces.
//!
//! Object keys keep insertion order, so rendering is deterministic —
//! golden tests can compare full reply lines.

use std::fmt;

/// Escape `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number, or `null` for the values JSON
/// cannot represent (NaN and the infinities).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{}", v)
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64` (every wire quantity in this workspace fits
/// a 53-bit mantissa); object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Convenience constructor for an integer value.
    pub fn int(v: i64) -> Json {
        Json::Num(v as f64)
    }

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error (a wire frame must be exactly one value).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the first offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(v) => f.write_str(&number(*v)),
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}", v)?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{}", escape(k), v)?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{}`", word)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn num(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn number_maps_nonfinite_to_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn parse_round_trips_a_nested_value() {
        let text = r#"{"op":"translate","n":42,"f":1.5,"ok":true,"xs":[1,2,null],"s":"a\nb"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("translate"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(42));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\nb"));
        // Render → parse is the identity on the tree.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        let v = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".to_string(), Json::int(1)),
            ("a".to_string(), Json::str("x")),
        ]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":"x"}"#);
    }
}
