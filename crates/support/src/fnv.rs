//! FNV-1a 64-bit — the workspace's single stock content hash.
//!
//! Dependency-free, stable across runs and platforms, and shared by
//! every layer that needs content addressing so their keys are
//! comparable by construction:
//!
//! * the serve tier's grammar handles ([`hash_chunks`] over source +
//!   scanner binding, rendered by [`hex16`]),
//! * the router's consistent-hash ring (node and key points),
//! * the code generator's artifact hash (the engine matches generated
//!   evaluator source to compiled artifacts by this key).
//!
//! One implementation means one set of constants: the 64-bit FNV offset
//! basis and prime below are the only copies in the tree.

/// The FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash one byte string.
pub fn hash(bytes: &[u8]) -> u64 {
    fold(OFFSET_BASIS, bytes)
}

/// Hash a concatenation of chunks without materializing it:
/// `hash_chunks(&[a, b]) == hash(a ++ b)`.
pub fn hash_chunks(chunks: &[&[u8]]) -> u64 {
    chunks.iter().fold(OFFSET_BASIS, |h, c| fold(h, c))
}

/// Continue an FNV-1a hash from state `h` over `bytes` (streaming use).
pub fn fold(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
}

/// The workspace's canonical rendering of a 64-bit content hash: 16
/// lowercase hex digits (grammar handles, compiled-artifact keys).
pub fn hex16(h: u64) -> String {
    format!("{:016x}", h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values for the classic FNV-1a 64 test strings.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chunking_is_transparent() {
        assert_eq!(hash_chunks(&[b"foo", b"bar"]), hash(b"foobar"));
        assert_eq!(hash_chunks(&[b"", b"foobar", b""]), hash(b"foobar"));
        assert_eq!(hash_chunks(&[]), hash(b""));
    }

    #[test]
    fn hex_rendering_is_16_lowercase_digits() {
        let h = hex16(hash(b"grammar"));
        assert_eq!(h.len(), 16);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
