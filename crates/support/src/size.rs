//! Byte-size accounting and the dynamic-data memory meter.
//!
//! The paper's headline systems claim: "About 48K bytes of memory are
//! available to LINGUIST-86 for holding dynamic data … Even though the APT
//! for the LINGUIST-86 attribute grammar is more than 42K bytes long,
//! everything fits because at any one time most of the APT is stored in
//! temporary disk files." Experiment E12 reproduces the shape of that claim;
//! [`Meter`] is the high-water-mark accountant the evaluator charges its
//! stack-resident node bytes against.

use std::fmt;

/// Types that can report the bytes they would occupy in the evaluator's
/// dynamic-data area (the 8086 image's heap/stack in the paper).
pub trait ByteSized {
    /// Approximate owned size in bytes, including heap payloads.
    fn byte_size(&self) -> usize;
}

impl ByteSized for i64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for bool {
    fn byte_size(&self) -> usize {
        1
    }
}

impl ByteSized for String {
    fn byte_size(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
}

impl<T: ByteSized> ByteSized for Vec<T> {
    fn byte_size(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(ByteSized::byte_size).sum::<usize>()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn byte_size(&self) -> usize {
        std::mem::size_of::<usize>() + self.as_ref().map_or(0, ByteSized::byte_size)
    }
}

/// A charge/release accountant with a high-water mark.
///
/// The evaluator charges node records as they are read onto the stack and
/// releases them when written back to the intermediate file; the peak is
/// what must fit in the paper's 48 KB window.
///
/// # Example
///
/// ```
/// use linguist_support::size::Meter;
/// let mut m = Meter::with_budget(Some(100));
/// m.charge(60);
/// m.charge(30);
/// m.release(60);
/// assert_eq!(m.current(), 30);
/// assert_eq!(m.peak(), 90);
/// assert!(!m.exceeded());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Meter {
    current: usize,
    peak: usize,
    budget: Option<usize>,
    exceeded: bool,
}

impl Meter {
    /// A meter with no budget (pure measurement).
    pub fn new() -> Meter {
        Meter::default()
    }

    /// A meter that flags (but does not stop) usage past `budget` bytes.
    /// `None` means unlimited. The paper's configuration is
    /// `Some(48 * 1024)`.
    pub fn with_budget(budget: Option<usize>) -> Meter {
        Meter {
            budget,
            ..Meter::default()
        }
    }

    /// The paper's 48 KB dynamic-data configuration.
    pub fn paper_default() -> Meter {
        Meter::with_budget(Some(48 * 1024))
    }

    /// Charge `bytes` against the meter.
    pub fn charge(&mut self, bytes: usize) {
        self.current += bytes;
        if self.current > self.peak {
            self.peak = self.current;
        }
        if let Some(b) = self.budget {
            if self.current > b {
                self.exceeded = true;
            }
        }
    }

    /// Release `bytes` previously charged. Saturates at zero.
    pub fn release(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Bytes currently charged.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The high-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Whether usage ever went past the budget.
    pub fn exceeded(&self) -> bool {
        self.exceeded
    }

    /// Reset current/peak/exceeded, keeping the budget.
    pub fn reset(&mut self) {
        self.current = 0;
        self.peak = 0;
        self.exceeded = false;
    }
}

impl fmt::Display for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget {
            Some(b) => write!(
                f,
                "peak {} B of {} B budget (now {} B)",
                self.peak, b, self.current
            ),
            None => write!(f, "peak {} B (now {} B)", self.peak, self.current),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water() {
        let mut m = Meter::new();
        m.charge(10);
        m.charge(20);
        m.release(25);
        m.charge(4);
        assert_eq!(m.current(), 9);
        assert_eq!(m.peak(), 30);
    }

    #[test]
    fn budget_flags_but_does_not_stop() {
        let mut m = Meter::with_budget(Some(16));
        m.charge(10);
        assert!(!m.exceeded());
        m.charge(10);
        assert!(m.exceeded());
        m.release(20);
        assert!(m.exceeded(), "exceeded latches");
    }

    #[test]
    fn release_saturates() {
        let mut m = Meter::new();
        m.charge(5);
        m.release(100);
        assert_eq!(m.current(), 0);
    }

    #[test]
    fn paper_default_is_48k() {
        assert_eq!(Meter::paper_default().budget(), Some(48 * 1024));
    }

    #[test]
    fn byte_sized_impls() {
        assert_eq!(3i64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
        let s = String::from("abc");
        assert!(s.byte_size() >= 3);
        let v = vec![1i64, 2, 3];
        assert!(v.byte_size() >= 24);
    }

    #[test]
    fn reset_keeps_budget() {
        let mut m = Meter::with_budget(Some(8));
        m.charge(10);
        m.reset();
        assert_eq!(m.peak(), 0);
        assert_eq!(m.budget(), Some(8));
        assert!(!m.exceeded());
    }
}
