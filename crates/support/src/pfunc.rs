//! Partial functions as persistent association lists.
//!
//! Figure 5 of the paper shows the LINGUIST-86 AG itself using partial
//! functions: `EvalPF(attrib$list1.STATICS, attrib.NAME) <> bottom` and
//! `consPF(name, type, list)`. A partial function maps keys to values and
//! returns "bottom" (here [`None`]) outside its domain.

use crate::list::List;
use std::fmt;

/// A persistent partial function (association list).
///
/// Later bindings shadow earlier ones, matching `consPF` semantics: the
/// newest pair is consulted first by `EvalPF`.
///
/// # Example
///
/// ```
/// use linguist_support::pfunc::PartialFn;
/// let f = PartialFn::empty().bind("x", 1).bind("y", 2).bind("x", 3);
/// assert_eq!(f.eval(&"x"), Some(&3)); // newest binding wins
/// assert_eq!(f.eval(&"z"), None);     // bottom
/// ```
#[derive(Clone)]
pub struct PartialFn<K, V> {
    pairs: List<(K, V)>,
}

impl<K: PartialEq + Clone, V: Clone> PartialFn<K, V> {
    /// The everywhere-undefined partial function.
    pub fn empty() -> PartialFn<K, V> {
        PartialFn { pairs: List::nil() }
    }

    /// The paper's `consPF`: extend with `key ↦ value` (shadowing any
    /// earlier binding for `key`).
    pub fn bind(&self, key: K, value: V) -> PartialFn<K, V> {
        PartialFn {
            pairs: self.pairs.cons((key, value)),
        }
    }

    /// The paper's `EvalPF`: apply to `key`; `None` is "bottom".
    pub fn eval(&self, key: &K) -> Option<&V> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is in the domain.
    pub fn is_defined_at(&self, key: &K) -> bool {
        self.eval(key).is_some()
    }

    /// The distinct keys in the domain (shadowed duplicates collapsed).
    pub fn domain(&self) -> Vec<K> {
        let mut out: Vec<K> = Vec::new();
        for (k, _) in self.pairs.iter() {
            if !out.iter().any(|seen| seen == k) {
                out.push(k.clone());
            }
        }
        out
    }

    /// Number of distinct keys in the domain.
    pub fn domain_len(&self) -> usize {
        self.domain().len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate `(key, value)` pairs, newest binding first (including
    /// shadowed pairs — callers wanting effective bindings should use
    /// [`PartialFn::domain`] + [`PartialFn::eval`]).
    pub fn iter(&self) -> crate::list::Iter<'_, (K, V)> {
        self.pairs.iter()
    }
}

impl<K: PartialEq + Clone, V: Clone> Default for PartialFn<K, V> {
    fn default() -> PartialFn<K, V> {
        PartialFn::empty()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PartialFn<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.pairs.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: PartialEq + Clone, V: Clone> FromIterator<(K, V)> for PartialFn<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> PartialFn<K, V> {
        let mut out = PartialFn::empty();
        for (k, v) in iter {
            out = out.bind(k, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_outside_domain_is_bottom() {
        let f: PartialFn<&str, i32> = PartialFn::empty();
        assert_eq!(f.eval(&"anything"), None);
        assert!(!f.is_defined_at(&"anything"));
    }

    #[test]
    fn newest_binding_shadows() {
        let f = PartialFn::empty().bind(1, "old").bind(1, "new");
        assert_eq!(f.eval(&1), Some(&"new"));
        assert_eq!(f.domain_len(), 1);
    }

    #[test]
    fn domain_collects_distinct_keys() {
        let f = PartialFn::empty().bind("a", 1).bind("b", 2).bind("a", 3);
        let mut d = f.domain();
        d.sort();
        assert_eq!(d, vec!["a", "b"]);
    }

    #[test]
    fn bind_is_persistent() {
        let f = PartialFn::empty().bind("k", 1);
        let g = f.bind("k", 2);
        assert_eq!(f.eval(&"k"), Some(&1));
        assert_eq!(g.eval(&"k"), Some(&2));
    }
}
