//! The name table: string interning for identifiers.
//!
//! LINGUIST-86 keeps "name-table entries that store the source text of
//! identifiers" in its small dynamic-data area; every other structure refers
//! to identifiers by table index. [`Name`] is that index, made type-safe.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier: an index into a [`NameTable`].
///
/// `Name`s are cheap to copy and compare; resolving one back to text
/// requires the table that produced it.
///
/// # Example
///
/// ```
/// use linguist_support::intern::NameTable;
/// let mut t = NameTable::new();
/// let a = t.intern("x");
/// let b = t.intern("x");
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(u32);

impl Name {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `Name` from a raw index previously obtained with
    /// [`Name::index`]. Only meaningful with the same table.
    pub fn from_index(ix: usize) -> Name {
        Name(ix as u32)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

/// The identifier name table.
///
/// Stores each distinct string once and hands out stable [`Name`] ids.
/// Mirrors the paper's name-table package: the scanner interns every
/// identifier it sees, and all later overlays traffic only in `Name`s.
#[derive(Debug, Default, Clone)]
pub struct NameTable {
    strings: Vec<String>,
    map: HashMap<String, Name>,
}

impl NameTable {
    /// Create an empty name table.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Intern `text`, returning its stable id. Idempotent.
    pub fn intern(&mut self, text: &str) -> Name {
        if let Some(&n) = self.map.get(text) {
            return n;
        }
        let n = Name(self.strings.len() as u32);
        self.strings.push(text.to_owned());
        self.map.insert(text.to_owned(), n);
        n
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, text: &str) -> Option<Name> {
        self.map.get(text).copied()
    }

    /// Resolve a name back to its text.
    ///
    /// # Panics
    ///
    /// Panics if `name` did not come from this table.
    pub fn resolve(&self, name: Name) -> &str {
        &self.strings[name.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Name, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Name, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Name(i as u32), s.as_str()))
    }

    /// Total bytes of identifier text held (the paper counts this against
    /// its 48 KB dynamic-data budget).
    pub fn text_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        let c = t.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = NameTable::new();
        let words = ["alpha", "beta", "gamma", ""];
        let names: Vec<Name> = words.iter().map(|w| t.intern(w)).collect();
        for (n, w) in names.iter().zip(words.iter()) {
            assert_eq!(t.resolve(*n), *w);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = NameTable::new();
        assert!(t.get("missing").is_none());
        assert_eq!(t.len(), 0);
        t.intern("present");
        assert!(t.get("present").is_some());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut t = NameTable::new();
        t.intern("one");
        t.intern("two");
        t.intern("three");
        let texts: Vec<&str> = t.iter().map(|(_, s)| s).collect();
        assert_eq!(texts, vec!["one", "two", "three"]);
    }

    #[test]
    fn text_bytes_counts_storage() {
        let mut t = NameTable::new();
        t.intern("ab");
        t.intern("cde");
        t.intern("ab"); // duplicate: not stored twice
        assert_eq!(t.text_bytes(), 5);
    }
}
