//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md's experiment index E3–E14) and prints it in
//! the paper's format next to the original numbers, so EXPERIMENTS.md can
//! record paper-vs-measured side by side.

use linguist_frontend::driver::{run, DriverOptions, DriverOutput};
use std::time::{Duration, Instant};

/// Run the driver, panicking with the error text on failure (bench
/// workloads are known-good).
pub fn analyze(source: &str, opts: &DriverOptions) -> DriverOutput {
    run(source, opts).unwrap_or_else(|e| panic!("bench grammar failed: {}", e))
}

/// Median wall-clock duration of `f` over `n` runs.
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Format a duration in microseconds with thousands separators.
pub fn us(d: Duration) -> String {
    let micros = d.as_micros();
    format!("{} us", micros)
}

/// Print a rule line.
pub fn rule(title: &str) {
    println!("\n==== {} {}", title, "=".repeat(60usize.saturating_sub(title.len())));
}
