//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md's experiment index E3–E14) and prints it in
//! the paper's format next to the original numbers, so EXPERIMENTS.md can
//! record paper-vs-measured side by side.

use linguist_frontend::driver::{run, DriverOptions, DriverOutput};
use linguist_support::json::Json;
use std::time::{Duration, Instant};

/// Run the driver, panicking with the error text on failure (bench
/// workloads are known-good).
pub fn analyze(source: &str, opts: &DriverOptions) -> DriverOutput {
    run(source, opts).unwrap_or_else(|e| panic!("bench grammar failed: {}", e))
}

/// Median wall-clock duration of `f` over `n` runs.
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Format a duration in microseconds with thousands separators.
pub fn us(d: Duration) -> String {
    let micros = d.as_micros();
    format!("{} us", micros)
}

/// Print a rule line.
pub fn rule(title: &str) {
    println!(
        "\n==== {} {}",
        title,
        "=".repeat(60usize.saturating_sub(title.len()))
    );
}

/// Write a machine-readable snapshot of a bench run to
/// `target/BENCH_<name>.json`, next to the cargo artifacts, and return
/// the path. `json` must already be a rendered JSON value — it is
/// checked against the shared [`linguist_support::json`] parser first,
/// so a malformed snapshot fails loudly in the bench instead of
/// silently poisoning downstream consumers. I/O failures are reported
/// but non-fatal: a read-only checkout still runs the bench.
pub fn write_snapshot(name: &str, json: &str) -> Option<std::path::PathBuf> {
    if let Err(e) = Json::parse(json) {
        panic!("snapshot {} is not valid JSON: {}", name, e);
    }
    // Benches run with the package directory as cwd; find the build's
    // real target dir by walking up from the running executable.
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            let exe = std::env::current_exe().ok()?;
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_else(|| std::path::PathBuf::from("target"));
    let path = dir.join(format!("BENCH_{}.json", name));
    match std::fs::write(&path, json) {
        Ok(()) => {
            println!("snapshot: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("snapshot {} not written: {}", path.display(), e);
            None
        }
    }
}
