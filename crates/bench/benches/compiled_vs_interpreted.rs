//! Compiled vs interpreted evaluator throughput (EXPERIMENTS E21).
//!
//! The question the engine subsystem has to answer: once a grammar is
//! warm in the serve tier, what does running its *generated Rust
//! evaluator* buy over the multi-pass interpreter? For each bundled
//! grammar, synthesize one serve-shaped derivation and time three warm
//! paths over the same tree with the same serve-job options:
//!
//! * `interpreted` — the in-process multi-pass interpreter exactly as
//!   a warm daemon job runs it (memory backing, profile on);
//! * `aot` — the checked-in generated evaluator, resolved by content
//!   hash and called in-process through the engine;
//! * `jit` — the same generated source compiled on demand by `rustc`
//!   into the content-hash cache, then run as a subprocess speaking
//!   APT framing (spawn + framing cost is *included*: that is the
//!   price of the out-of-process ladder rung). Skipped without rustc.
//!
//! Every compiled run is checked against the interpreter's outputs
//! before timing starts, so the snapshot can't report speedups for an
//! engine that disagrees. The snapshot lands in
//! `target/BENCH_compiled_vs_interpreted.json`; the repo root carries a
//! committed copy with the measured single-core CI numbers.

use linguist_ag::passes::Direction;
use linguist_bench::{rule, write_snapshot};
use linguist_engine::{Engine, EngineConfig, EngineKind};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, Backing, EvalOptions, Strategy};
use linguist_frontend::report::synthesize_tree;
use std::fmt::Write as _;
use std::time::Instant;

const BUDGET: usize = 256;
const ITERS: u32 = 40;

/// Mean microseconds per call over `ITERS` warm runs of `f`.
fn time_us(mut f: impl FnMut()) -> f64 {
    f(); // warm: page in code, fault in buffers
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / ITERS as f64
}

fn main() {
    rule("compiled vs interpreted evaluator, warm serve-shaped jobs");
    // knuth's synthetic derivations grow `Pow2` exponents with leaf
    // count, so its budget stays below the intrinsic's 2^62 ceiling.
    let grammars = [
        ("calc", linguist_grammars::calc_source(), BUDGET),
        ("knuth", linguist_grammars::knuth_source(), 48),
        ("block", linguist_grammars::block_source(), BUDGET),
        ("meta", linguist_grammars::meta_source(), BUDGET),
        ("pascal", linguist_grammars::pascal_source(), BUDGET),
    ];
    let funcs = Funcs::standard();
    let aot = Engine::new(EngineConfig {
        kind: EngineKind::CompiledAot,
        ..EngineConfig::default()
    });
    let jit_engine = Engine::new(EngineConfig {
        kind: EngineKind::CompiledJit,
        ..EngineConfig::default()
    });
    let have_rustc = linguist_engine::jit::rustc_available();
    if !have_rustc {
        println!("  (rustc not on PATH: JIT column will be null)");
    }
    let mut rows = Vec::new();
    for (name, source, budget) in grammars {
        let out = linguist_grammars::analyze(source)
            .unwrap_or_else(|e| panic!("{} failed to analyze: {:?}", name, e));
        let analysis = &out.analysis;
        let tree = synthesize_tree(&analysis.grammar, budget).expect("finite derivation");
        let strategy = match analysis.passes.direction(1) {
            Direction::RightToLeft => Strategy::BottomUp,
            Direction::LeftToRight => Strategy::Prefix,
        };
        // The exact options a warm daemon job uses.
        let opts = EvalOptions {
            strategy,
            profile: true,
            backing: Backing::Memory,
            ..EvalOptions::default()
        };

        let reference = evaluate(analysis, &funcs, &tree, &opts).expect("interpreter evaluates");
        let prepared_aot = aot.prepare(analysis);
        assert_eq!(
            prepared_aot.effective(),
            EngineKind::CompiledAot,
            "{}: AOT registry miss ({:?}) — rerun `cargo run --example gen_aot`",
            name,
            prepared_aot.fallback(),
        );
        let check = aot.evaluate(&prepared_aot, analysis, &funcs, &tree, &opts);
        assert!(check.fallback.is_none(), "{}: {:?}", name, check.fallback);
        assert_eq!(
            check.result.expect("aot evaluates").outputs,
            reference.outputs,
            "{}: compiled outputs diverge from the interpreter",
            name
        );

        let interpreted_us = time_us(|| {
            evaluate(analysis, &funcs, &tree, &opts).expect("interpreter evaluates");
        });
        // The paper-faithful configuration: pass files on disk, as the
        // CLI and batch paths run by default.
        let file_opts = EvalOptions {
            strategy,
            profile: true,
            backing: Backing::Disk,
            ..EvalOptions::default()
        };
        let file_us = time_us(|| {
            evaluate(analysis, &funcs, &tree, &file_opts).expect("interpreter evaluates");
        });
        let aot_us = time_us(|| {
            let o = aot.evaluate(&prepared_aot, analysis, &funcs, &tree, &opts);
            assert!(o.fallback.is_none() && o.result.is_ok());
        });
        let jit_us = have_rustc.then(|| {
            let prepared = jit_engine.prepare(analysis);
            assert_eq!(prepared.effective(), EngineKind::CompiledJit, "{}", name);
            time_us(|| {
                let o = jit_engine.evaluate(&prepared, analysis, &funcs, &tree, &opts);
                assert!(o.fallback.is_none() && o.result.is_ok());
            })
        });

        let speedup = interpreted_us / aot_us;
        println!(
            "  {:<7} {:>4} nodes  mem-interp {:>8.1}µs  file-interp {:>9.1}µs  aot {:>7.1}µs ({:>4.1}× mem, {:>5.1}× file)  jit {}",
            name,
            tree.size(),
            interpreted_us,
            file_us,
            aot_us,
            speedup,
            file_us / aot_us,
            match jit_us {
                Some(us) => format!("{:>8.1}µs ({:>5.2}×)", us, interpreted_us / us),
                None => "skipped".to_string(),
            }
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"grammar\":\"{}\",\"nodes\":{},\"interpreted_us\":{:.2},\"file_interpreted_us\":{:.2},\"aot_us\":{:.2},\"aot_speedup\":{:.2},\"aot_speedup_vs_files\":{:.2},",
            name,
            tree.size(),
            interpreted_us,
            file_us,
            aot_us,
            speedup,
            file_us / aot_us
        );
        match jit_us {
            Some(us) => {
                let _ = write!(
                    row,
                    "\"jit_us\":{:.2},\"jit_speedup\":{:.2}}}",
                    us,
                    interpreted_us / us
                );
            }
            None => row.push_str("\"jit_us\":null,\"jit_speedup\":null}"),
        }
        rows.push((row, speedup, file_us / aot_us));
    }
    let geomean = (rows.iter().map(|(_, s, _)| s.ln()).sum::<f64>() / rows.len() as f64).exp();
    let geomean_files =
        (rows.iter().map(|(_, _, s)| s.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "  geomean aot speedup: {:.1}× vs memory-backed, {:.1}× vs file-backed",
        geomean, geomean_files
    );
    let json = format!(
        "{{\"budget\":{},\"iters\":{},\"aot_speedup_geomean\":{:.2},\
         \"aot_speedup_vs_files_geomean\":{:.2},\
         \"note\":\"single-core CI box; serve-shaped warm jobs (profile on); interpreted_us is \
         the serve tier's memory-backed fast path, file_interpreted_us the paper-faithful \
         disk-backed default; aot_us includes per-job APT framing and output decode at the ABI \
         boundary; jit_us additionally includes per-run subprocess spawn\",\"rows\":[{}]}}",
        BUDGET,
        ITERS,
        geomean,
        geomean_files,
        rows.iter()
            .map(|(r, _, _)| r.as_str())
            .collect::<Vec<_>>()
            .join(",")
    );
    write_snapshot("compiled_vs_interpreted", &json);
}
