//! E3 — the §II linearization diagram, measured.
//!
//! The output file of a left-to-right pass read backwards is the input
//! of a right-to-left pass. This bench verifies the reversal property on
//! trees of growing size and times forward vs backward record streaming
//! (criterion), since backward reads are the paradigm's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use linguist_eval::aptfile::{AptReader, AptWriter, ReadDir, Record, RecordBody, TempAptDir};
use linguist_eval::value::Value;
use std::hint::black_box;

fn records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| Record {
            body: if i % 3 == 0 {
                RecordBody::Prod(ProdId(i as u32))
            } else {
                RecordBody::Sym(SymbolId(i as u32))
            },
            values: vec![
                (AttrId(0), Value::Int(i as i64)),
                (AttrId(1), Value::str("attribute-instance")),
            ],
        })
        .collect()
}

fn verify_reversal(n: usize) {
    let recs = records(n);
    let dir = TempAptDir::new().unwrap();
    let path = dir.boundary(0);
    let mut w = AptWriter::create(&path).unwrap();
    for r in &recs {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    let mut back = Vec::new();
    let mut rd = AptReader::open(&path, ReadDir::Backward).unwrap();
    while let Some(rec) = rd.next().unwrap() {
        back.push(rec);
    }
    back.reverse();
    assert_eq!(back, recs, "backward stream is the exact reverse");
}

fn bench_streams(c: &mut Criterion) {
    // Correctness across sizes first (the figure's property).
    for n in [10, 100, 1000] {
        verify_reversal(n);
    }
    println!("E3: reversal property verified for 10/100/1000-record files");

    let mut group = c.benchmark_group("apt_stream");
    for n in [100usize, 1000] {
        let recs = records(n);
        let dir = TempAptDir::new().unwrap();
        let path = dir.boundary(0);
        let mut w = AptWriter::create(&path).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();

        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut rd = AptReader::open(&path, ReadDir::Forward).unwrap();
                let mut count = 0;
                while let Some(rec) = rd.next().unwrap() {
                    count += black_box(rec).values.len();
                }
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("backward", n), &n, |b, _| {
            b.iter(|| {
                let mut rd = AptReader::open(&path, ReadDir::Backward).unwrap();
                let mut count = 0;
                while let Some(rec) = rd.next().unwrap() {
                    count += black_box(rec).values.len();
                }
                count
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_streams
}
criterion_main!(benches);
