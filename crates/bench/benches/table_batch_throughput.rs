//! Batch-evaluation throughput: 1 worker vs N, owned vs shared store.
//!
//! Not a paper table — the original ran on a single-CPU minicomputer —
//! but the natural successor experiment: with the evaluation runtime
//! made thread-safe, how does jobs/sec scale when independent APTs are
//! evaluated concurrently? Memory backing keeps the disk out of the
//! measurement, so this is pure evaluator scaling.
//!
//! The snapshot records `cores` so a single-core CI box's flat sweep is
//! not misread as a regression, and a legacy
//! [`Backing::SharedMemory`] ablation row so the mutex traffic the
//! shared-nothing store removed stays visible: the owned path must
//! report exactly zero store lock acquisitions, the legacy path counts
//! several per record.

use linguist_bench::{rule, write_snapshot};
use linguist_eval::batch::BatchEvaluator;
use linguist_eval::machine::{Backing, EvalOptions};
use linguist_eval::tree::PTree;
use linguist_eval::Funcs;
use linguist_frontend::report::metrics_json;
use linguist_frontend::translate::standard_intrinsics;
use linguist_frontend::{run, DriverOptions, Translator};
use linguist_grammars::{calc_scanner, calc_source};
use linguist_support::intern::NameTable;

fn calc_inputs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            // Moderately deep expressions so each job does real work.
            let mut src = format!("{}", i % 10);
            for k in 0..60 {
                src = format!("({} + {} * {})", src, (i + k) % 9 + 1, k % 7 + 1);
            }
            src
        })
        .collect()
}

fn main() {
    rule("batch evaluation throughput (1 worker vs N, memory backing)");

    let analysis = run(calc_source(), &DriverOptions::default())
        .expect("calc grammar analyzes")
        .analysis;
    let tr = Translator::new(analysis, calc_scanner()).expect("calc translator builds");
    let funcs = Funcs::standard();
    let opts = EvalOptions {
        backing: Backing::Memory,
        ..EvalOptions::default()
    };

    let inputs = calc_inputs(200);
    let trees: Vec<PTree> = inputs
        .iter()
        .map(|src| {
            let mut names = NameTable::new();
            tr.parse_input(src, &standard_intrinsics, &mut names)
                .expect("generated input parses")
        })
        .collect();

    println!("{} jobs of ~{} nodes each\n", trees.len(), trees[0].size());
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "workers", "wall", "jobs/sec", "speedup"
    );

    let mut baseline = 0.0f64;
    let mut at4 = None;
    let mut sweep_rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        // Best-of-3 to shake scheduler noise out of the table.
        let best = (0..3)
            .map(|_| {
                let outcome = BatchEvaluator::with_options(workers, opts.clone()).run(
                    &tr.analysis,
                    &funcs,
                    &trees,
                );
                assert_eq!(outcome.stats.failed, 0);
                assert_eq!(
                    outcome.stats.lock_acquisitions, 0,
                    "owned-store batch took store locks"
                );
                outcome.stats
            })
            .max_by(|a, b| a.jobs_per_sec().total_cmp(&b.jobs_per_sec()))
            .expect("three runs");
        let jps = best.jobs_per_sec();
        if workers == 1 {
            baseline = jps;
        }
        if workers == 4 {
            at4 = Some(jps);
        }
        println!(
            "{:<8} {:>12} {:>14.1} {:>9.2}x",
            workers,
            format!("{:?}", best.wall),
            jps,
            jps / baseline
        );
        sweep_rows.push(format!(
            "{{\"workers\":{},\"wall_us\":{},\"jobs_per_sec\":{:.1},\"speedup\":{:.3}}}",
            workers,
            best.wall.as_micros(),
            jps,
            jps / baseline
        ));
    }

    // Ablation: the same 200 jobs on the legacy mutex-guarded store.
    // Its per-record lock traffic is the contention the owned store
    // removed; the counter makes the difference exact rather than
    // inferred from wall clock (which a single-core box can't show).
    let shared_opts = EvalOptions {
        backing: Backing::SharedMemory,
        ..EvalOptions::default()
    };
    let shared = (0..3)
        .map(|_| {
            let outcome = BatchEvaluator::with_options(1, shared_opts.clone()).run(
                &tr.analysis,
                &funcs,
                &trees,
            );
            assert_eq!(outcome.stats.failed, 0);
            outcome.stats
        })
        .max_by(|a, b| a.jobs_per_sec().total_cmp(&b.jobs_per_sec()))
        .expect("three runs");
    assert!(
        shared.lock_acquisitions > 0,
        "legacy shared store reported no lock traffic"
    );
    println!(
        "\nlegacy shared store: {} lock acquisitions across {} jobs ({} per job); owned store: 0",
        shared.lock_acquisitions,
        trees.len(),
        shared.lock_acquisitions / trees.len() as u64
    );
    println!(
        "legacy shared store at 1 worker: {:.1} jobs/sec vs {:.1} owned ({:.2}x owned/legacy)",
        shared.jobs_per_sec(),
        baseline,
        baseline / shared.jobs_per_sec()
    );

    // One profiled pass over the same batch gives the snapshot an I/O
    // dimension: per-pass record/byte traffic aggregated across jobs.
    let profiled_opts = EvalOptions {
        profile: true,
        ..opts.clone()
    };
    let profiled = BatchEvaluator::with_options(4, profiled_opts).run(&tr.analysis, &funcs, &trees);
    assert_eq!(profiled.stats.failed, 0);
    let metrics = profiled
        .stats
        .metrics
        .as_ref()
        .expect("profiled batch collects metrics");
    assert_eq!(
        metrics.lock_acquisitions, 0,
        "owned-store metrics recorded store locks"
    );
    println!(
        "\nprofiled: {} initial records, {} total file bytes across {} jobs",
        metrics.initial_records,
        metrics.total_io_bytes(),
        trees.len()
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    write_snapshot(
        "table_batch_throughput",
        &format!(
            "{{\"bench\":\"table_batch_throughput\",\"jobs\":{},\"nodes_per_job\":{},\"cores\":{},\"backing\":\"memory_owned\",\"lock_acquisitions\":0,\"shared_store_lock_acquisitions\":{},\"shared_store_jobs_per_sec\":{:.1},\"owned_store_jobs_per_sec\":{:.1},\"sweep\":[{}],\"profile\":{}}}",
            trees.len(),
            trees[0].size(),
            cores,
            shared.lock_acquisitions,
            shared.jobs_per_sec(),
            baseline,
            sweep_rows.join(","),
            metrics_json(metrics)
        ),
    );

    if let Some(jps4) = at4 {
        let speedup = jps4 / baseline;
        println!("\n4-worker speedup: {:.2}x on {} core(s)", speedup, cores);
        if cores >= 4 {
            assert!(
                speedup > 2.5,
                "expected >2.5x jobs/sec at 4 workers on the shared-nothing store, measured {:.2}x",
                speedup
            );
        } else {
            println!(
                "(fewer than 4 cores available; the {:.2}x sweep reflects core count, not store \
                 contention — speedup assertion skipped)",
                speedup
            );
        }
    }
}
