//! E13 — static-subsumption ablations (the paper's conclusions ask
//! "whether a more complete and global analysis … can yield markedly
//! better static subsumption results").
//!
//! Three sweeps over the synthetic grammar family:
//!   1. copy density vs code eliminated (the 40–60% copy-rule regime),
//!   2. the cost-model ratio (save/restore vs copy),
//!   3. same-name grouping vs the cross-name coalescing extension.

use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::subsumption::{GroupMode, Subsumption, SubsumptionCosts};
use linguist_bench::rule;
use linguist_codegen::{generate, Target};
use linguist_grammars::synth::{generate as synth, SynthParams};

fn eliminated_fraction(analysis: &Analysis) -> f64 {
    let with = generate(analysis, Target::Pascal).semantic_bytes();
    let mut disabled = analysis.clone();
    disabled.subsumption = Subsumption::disabled(&analysis.grammar);
    let without = generate(&disabled, Target::Pascal).semantic_bytes();
    (without.saturating_sub(with)) as f64 / without.max(1) as f64
}

fn main() {
    rule("E13a: copy density vs code eliminated");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "density", "copies %", "subsumed", "code elim %"
    );
    for density in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let sg = synth(&SynthParams {
            copy_density: density,
            ..SynthParams::default()
        });
        let analysis = Analysis::run(sg.grammar.clone(), &Config::default()).unwrap();
        let stats = analysis.stats();
        let sub = analysis.subsumption.stats(&analysis.grammar);
        println!(
            "{:>10.1} {:>11.0}% {:>12} {:>11.1}%",
            density,
            100.0 * stats.copy_fraction(),
            sub.subsumed_rules,
            100.0 * eliminated_fraction(&analysis)
        );
    }

    println!("\n(mid-range densities can dip: the byte-estimate cost model may keep a group whose");
    println!(
        " emitted save/restore outweighs its subsumed copies — the paper's algorithm likewise"
    );
    println!(" \"does not always find an optimal set of attributes to statically allocate\")");

    rule("E13b: cost-model sweep (save_restore : copy ratio)");
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "ratio", "static attrs", "subsumed", "sr sites"
    );
    let sg = synth(&SynthParams::default());
    for ratio in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let costs = SubsumptionCosts {
            copy: 12,
            save_restore: (12.0 * ratio) as usize,
        };
        let analysis = Analysis::run(
            sg.grammar.clone(),
            &Config {
                costs,
                ..Config::default()
            },
        )
        .unwrap();
        let sub = analysis.subsumption.stats(&analysis.grammar);
        println!(
            "{:>10.2} {:>10}/{:<3} {:>12} {:>12}",
            ratio, sub.static_attrs, sub.eligible_attrs, sub.subsumed_rules, sub.save_restore_sites
        );
    }

    rule("E13c: same-name grouping vs cross-name coalescing");
    println!(
        "{:>10} {:>16} {:>16}",
        "density", "same-name subs", "coalesced subs"
    );
    for density in [0.3, 0.5, 0.7] {
        let sg = synth(&SynthParams {
            copy_density: density,
            ..SynthParams::default()
        });
        let same = Analysis::run(sg.grammar.clone(), &Config::default()).unwrap();
        let coal = Analysis::run(
            sg.grammar.clone(),
            &Config {
                group_mode: GroupMode::CoalesceCopies,
                ..Config::default()
            },
        )
        .unwrap();
        println!(
            "{:>10.1} {:>16} {:>16}",
            density,
            same.subsumption.stats(&same.grammar).subsumed_rules,
            coal.subsumption.stats(&coal.grammar).subsumed_rules
        );
    }
    println!("\n(the paper's \"hand simulations made use of global information\" — coalescing is that global step)");
}
