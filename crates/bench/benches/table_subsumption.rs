//! E8 — the §III static-subsumption measurements.
//!
//! Paper: "Static subsumption eliminated nearly 20% of the semantic
//! function evaluation code in LINGUIST-86. It eliminated about 13% of
//! the code that evaluates semantic functions in the Pascal attribute
//! evaluator. … We also timed versions of LINGUIST-86 that were generated
//! with and without having static subsumption applied. Because the
//! evaluators are I/O bound there was no noticeable difference."
//!
//! Shape claims: a double-digit percentage of semantic code vanishes on
//! the copy-chain-heavy meta grammar; a smaller share on the
//! computation-heavy Pascal grammar; and run time is essentially
//! unchanged.

use linguist_ag::analysis::Config;
use linguist_bench::{analyze, median_time, rule, us};
use linguist_codegen::{generate, Target};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::EvalOptions;
use linguist_frontend::driver::DriverOptions;
use linguist_frontend::Translator;
use linguist_grammars::{meta_scanner, meta_source, pascal_source};

fn code_sizes(src: &str) -> (usize, usize, usize) {
    let with = analyze(src, &DriverOptions::default());
    let without = analyze(
        src,
        &DriverOptions {
            config: Config {
                disable_subsumption: true,
                ..Config::default()
            },
            ..DriverOptions::default()
        },
    );
    let with_gen = generate(&with.analysis, Target::Pascal);
    let without_gen = generate(&without.analysis, Target::Pascal);
    (
        with_gen.semantic_bytes(),
        without_gen.semantic_bytes(),
        with_gen.subsumed_rules(),
    )
}

fn main() {
    rule("E8: static subsumption code elimination (paper §III)");
    println!("paper: ~20% of semantic-function code eliminated on the LINGUIST grammar, ~13% on Pascal\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>10}",
        "grammar", "with (B)", "without (B)", "eliminated", "subsumed"
    );
    let mut fractions = Vec::new();
    for (name, src) in [("meta", meta_source()), ("pascal", pascal_source())] {
        let (with, without, subsumed) = code_sizes(src);
        let frac = (without.saturating_sub(with)) as f64 / without as f64;
        fractions.push((name, frac));
        println!(
            "{:<10} {:>12} {:>14} {:>11.1}% {:>10}",
            name,
            with,
            without,
            100.0 * frac,
            subsumed
        );
    }
    // Direction: the copy-chain-heavy grammar benefits more.
    let meta_frac = fractions[0].1;
    let pascal_frac = fractions[1].1;
    println!(
        "\nmeta eliminates a larger share than pascal: {:.1}% vs {:.1}% (paper: 20% vs 13%)",
        100.0 * meta_frac,
        100.0 * pascal_frac
    );
    assert!(meta_frac > pascal_frac, "direction matches the paper");
    assert!(meta_frac > 0.05, "double-digit-ish elimination on meta");

    // Run-time comparison: evaluation is I/O bound, so subsumption on/off
    // should not move the needle.
    rule("run time with vs without subsumption (paper: no noticeable difference)");
    let with = analyze(meta_source(), &DriverOptions::default());
    let without = analyze(
        meta_source(),
        &DriverOptions {
            config: Config {
                disable_subsumption: true,
                ..Config::default()
            },
            ..DriverOptions::default()
        },
    );
    let t_with = Translator::new(with.analysis, meta_scanner()).expect("translator");
    let t_without = Translator::new(without.analysis, meta_scanner()).expect("translator");
    let funcs = Funcs::standard();
    let opts = EvalOptions {
        check_globals: false,
        ..EvalOptions::default()
    };
    let d_with = median_time(7, || {
        let _ = t_with.translate(pascal_source(), &funcs, &opts);
    });
    let d_without = median_time(7, || {
        let _ = t_without.translate(pascal_source(), &funcs, &opts);
    });
    println!("with subsumption:    {}", us(d_with));
    println!("without subsumption: {}", us(d_without));
    let ratio = d_with.as_secs_f64() / d_without.as_secs_f64();
    println!(
        "ratio: {:.2} (paper: ~1.0 — evaluators are I/O bound)",
        ratio
    );
}
