//! E15 — the paper's closing question, answered.
//!
//! "Since attribute evaluation is I/O bound, can the evaluation paradigm
//! and its implementation be modified or streamlined to be faster?
//! Especially, would some form of virtual memory system significantly
//! speed up the evaluators?" (§Conclusions)
//!
//! We back the *identical* record format and pass structure with RAM
//! buffers instead of temporary files and measure the speedup across
//! workload sizes — the virtual-memory hypothetical with everything else
//! held fixed.

use linguist_bench::{analyze, median_time, rule, us};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{Backing, EvalOptions};
use linguist_frontend::driver::DriverOptions;
use linguist_frontend::Translator;
use linguist_grammars::{pascal_program, pascal_scanner, pascal_source};

fn main() {
    rule("E15: disk files vs memory backing (the paper's virtual-memory question)");
    let out = analyze(pascal_source(), &DriverOptions::default());
    let translator = Translator::new(out.analysis, pascal_scanner()).expect("translator");
    let funcs = Funcs::standard();
    let disk = EvalOptions {
        check_globals: false,
        ..EvalOptions::default()
    };
    let memory = EvalOptions {
        backing: Backing::Memory,
        ..disk.clone()
    };

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "stmts", "APT traffic B", "disk", "memory", "speedup"
    );
    for stmts in [20usize, 80, 320] {
        let program = pascal_program(8, stmts);
        // Results must agree between backings.
        let r_disk = translator
            .translate(&program, &funcs, &disk)
            .expect("disk run");
        let r_mem = translator
            .translate(&program, &funcs, &memory)
            .expect("memory run");
        assert!(
            r_disk
                .outputs
                .iter()
                .map(|(_, v)| v)
                .eq(r_mem.outputs.iter().map(|(_, v)| v)),
            "backings agree"
        );

        let d_disk = median_time(7, || {
            let _ = translator.translate(&program, &funcs, &disk);
        });
        let d_mem = median_time(7, || {
            let _ = translator.translate(&program, &funcs, &memory);
        });
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>9.2}x",
            stmts,
            r_disk.stats.total_io_bytes(),
            us(d_disk),
            us(d_mem),
            d_disk.as_secs_f64() / d_mem.as_secs_f64()
        );
    }
    println!(
        "\n(1982's answer would have been dramatic — floppy seeks vs RAM; on a modern OS the \
         page cache already absorbs most of the file traffic, so the residual speedup is the \
         per-record syscall cost)"
    );
}
