//! Resilience of the sharded serve tier under open-loop load.
//!
//! Not a paper table — the original system is batch — but the
//! measurement that justifies the router: what does a shard failure
//! cost the *client*? For 1, 2, and 4 shards behind one router, offer
//! a fixed open-loop request rate twice — once steady, once with a
//! shard SIGKILL-equivalent (hard stop) partway through the run and a
//! restart before it ends — and record success rate and latency
//! measured from each request's scheduled arrival (coordinated-
//! omission-free, so time spent failing over *counts*).
//!
//! The expected shape, pinned by `BENCH_serve_resilience.json`:
//!
//! * steady runs succeed 100% at every shard count;
//! * with 2+ shards, the kill run *also* succeeds 100% — failover
//!   and retry absorb the failure, paying only tail latency;
//! * with 1 shard, the kill run shows a real outage window (typed
//!   `shard_unavailable` failures) until the shard returns and is
//!   re-admitted — the degradation ladder's floor.

use linguist_bench::{rule, write_snapshot};
use linguist_serve::load::{run_load, LoadConfig};
use linguist_serve::router::{Router, RouterConfig, RouterHandle, ShardAddr};
use linguist_serve::server::{Server, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

const RATE: f64 = 150.0;
const DURATION: Duration = Duration::from_millis(1200);
const GRAMMARS: usize = 6;
const BUDGET: usize = 32;

fn sock_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "linguist-bench-resilience-{}-{}-{}.sock",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start_shard(path: &Path) -> ServerHandle {
    Server::start(ServerConfig {
        unix_path: Some(path.to_path_buf()),
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("shard starts")
}

fn start_router(shard_paths: &[PathBuf]) -> RouterHandle {
    Router::start(RouterConfig {
        unix_path: Some(sock_path("front")),
        shards: shard_paths
            .iter()
            .map(|p| ShardAddr::Unix(p.clone()))
            .collect(),
        health_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        attempt_timeout: Duration::from_millis(500),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        breaker_cooldown: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("router starts")
}

/// One load leg against a fresh topology. With `kill_one`, shard 0 is
/// hard-stopped at ~1/3 of the run and restarted at ~2/3.
fn leg(shards: usize, kill_one: bool) -> String {
    let paths: Vec<PathBuf> = (0..shards).map(|i| sock_path(&format!("s{}", i))).collect();
    let mut handles: Vec<ServerHandle> = paths.iter().map(|p| start_shard(p)).collect();
    let router = start_router(&paths);
    let target = ShardAddr::Unix(router.unix_path().expect("unix bound").to_path_buf());
    let chaos = kill_one.then(|| {
        let victim = handles.remove(0);
        let victim_path = paths[0].clone();
        std::thread::spawn(move || {
            std::thread::sleep(DURATION / 3);
            victim.shutdown();
            std::thread::sleep(DURATION / 3);
            start_shard(&victim_path)
        })
    });
    let report = run_load(&LoadConfig {
        target,
        rate: RATE,
        duration: DURATION,
        grammars: GRAMMARS,
        budget: BUDGET,
        senders: 4,
        ..LoadConfig::default()
    })
    .expect("load runs");
    if let Some(t) = chaos {
        handles.push(t.join().expect("chaos thread"));
    }
    println!(
        "  {} shard(s){}: {}/{} ok ({:.1}% success), p99 {:?}, p999 {:?}",
        shards,
        if kill_one { " +kill" } else { "" },
        report.ok,
        report.sent,
        report.success_rate() * 100.0,
        report.p99.unwrap_or_default(),
        report.p999.unwrap_or_default(),
    );
    router.shutdown();
    for h in handles {
        h.shutdown();
    }
    let body = report.to_json().to_string();
    // Splice the leg's identity into the report's own row shape.
    format!(
        "{{\"shards\":{},\"chaos\":{},{}",
        shards,
        if kill_one {
            "\"kill_one\""
        } else {
            "\"steady\""
        },
        body.strip_prefix('{').expect("object"),
    )
}

fn main() {
    rule("sharded serve tier: success rate and tail latency under faults");
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        for kill_one in [false, true] {
            rows.push(leg(shards, kill_one));
        }
    }
    let json = format!("{{\"rows\":[{}]}}", rows.join(","));
    write_snapshot("serve_resilience", &json);
}
