//! E12 — the memory-residency claim.
//!
//! Paper (abstract + §I): "About 48K bytes of memory are available …
//! Even though the APT for the LINGUIST-86 attribute grammar is more than
//! 42K bytes long, everything fits because at any one time most of the
//! APT is stored in temporary disk files."
//!
//! Shape claims:
//!  1. peak in-memory residency tracks the tree's *spine* (depth), not
//!     its size: a balanced tree 64× bigger needs only ~log more memory;
//!  2. realistic workloads whose APT files exceed the 48 KB window still
//!     evaluate comfortably inside it.

use linguist_bench::{analyze, rule};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::EvalOptions;
use linguist_frontend::driver::DriverOptions;
use linguist_frontend::Translator;
use linguist_grammars::{pascal_program, pascal_scanner, pascal_source};
use linguist_lexgen::ScannerDef;

/// A balanced binary tree language: pair = ( pair pair ) | leaf.
const BALANCED: &str = r#"
grammar Balanced ;
terminals
  leaf : intrinsic OBJ int ;
  LP ;
  RP ;
nonterminals
  pair : syn SUM int ;
start pair ;
productions
prod pair0 = LP pair1 pair2 RP :
  pair0.SUM = pair1.SUM + pair2.SUM ;
end
prod pair = leaf :
  pair.SUM = leaf.OBJ ;
end
end
"#;

fn balanced_input(depth: usize) -> String {
    if depth == 0 {
        "1".to_owned()
    } else {
        let sub = balanced_input(depth - 1);
        format!("({} {})", sub, sub)
    }
}

fn chain_input(leaves: usize) -> String {
    // Left-leaning chain with the same grammar: ((((1 1) 1) 1) ... 1).
    let mut s = "1".to_owned();
    for _ in 0..leaves {
        s = format!("({} 1)", s);
    }
    s
}

fn main() {
    rule("E12a: peak residency tracks depth, not size (balanced vs chain)");
    let out = analyze(BALANCED, &DriverOptions::default());
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("leaf", "[0-9]+")
        .token("LP", r"\(")
        .token("RP", r"\)")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();

    println!(
        "{:<10} {:>8} {:>8} {:>14} {:>10}",
        "shape", "leaves", "depth", "APT traffic B", "peak B"
    );
    let mut balanced_rows = Vec::new();
    for depth in [4usize, 6, 8, 10] {
        let input = balanced_input(depth);
        let r = t.translate(&input, &funcs, &opts).expect("balanced input");
        println!(
            "{:<10} {:>8} {:>8} {:>14} {:>10}",
            "balanced",
            1usize << depth,
            r.stats.max_depth,
            r.stats.total_io_bytes(),
            r.stats.meter.peak()
        );
        balanced_rows.push((
            1usize << depth,
            r.stats.total_io_bytes(),
            r.stats.meter.peak(),
        ));
    }
    for leaves in [16usize, 64] {
        let input = chain_input(leaves);
        let r = t.translate(&input, &funcs, &opts).expect("chain input");
        println!(
            "{:<10} {:>8} {:>8} {:>14} {:>10}",
            "chain",
            leaves + 1,
            r.stats.max_depth,
            r.stats.total_io_bytes(),
            r.stats.meter.peak()
        );
    }
    let (n0, io0, p0) = balanced_rows[0];
    let (n3, io3, p3) = balanced_rows[balanced_rows.len() - 1];
    println!(
        "\nbalanced tree x{}: APT traffic x{:.1} but peak residency only x{:.1} — the files absorb the size",
        n3 / n0,
        io3 as f64 / io0 as f64,
        p3 as f64 / p0 as f64
    );
    assert!((io3 as f64 / io0 as f64) > 8.0 * (p3 as f64 / p0 as f64));

    rule("E12b: a realistic workload beyond the 48 KB window (paper: >42K APT in 48K)");
    let out = analyze(pascal_source(), &DriverOptions::default());
    let translator = Translator::new(out.analysis, pascal_scanner()).expect("translator");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>8}",
        "stmts", "src bytes", "APT file B", "peak B", "fits?"
    );
    for stmts in [40usize, 160, 640] {
        let program = pascal_program(8, stmts);
        let r = translator
            .translate(&program, &funcs, &opts)
            .expect("program evaluates");
        let apt_file = r.stats.passes[0].bytes_written;
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>8}",
            stmts,
            program.len(),
            apt_file,
            r.stats.meter.peak(),
            if r.stats.meter.exceeded() {
                "NO"
            } else {
                "yes"
            }
        );
        if apt_file as usize > 42 * 1024 {
            assert!(
                !r.stats.meter.exceeded(),
                "an APT bigger than the paper's 42K still fits the 48K window"
            );
        }
    }
}
