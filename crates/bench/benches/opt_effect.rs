//! Grammar-optimizer effect (EXPERIMENTS E22).
//!
//! For each bundled grammar, run the same serve-shaped evaluation twice
//! — once on the paper-faithful analysis (`--opt=off`) and once through
//! the grammar optimizer (`--opt=on`, the CLI default) — and record
//! what the optimizer actually buys:
//!
//! * pass count (must never increase; the transforms only remove
//!   dependency edges),
//! * total records written across all boundaries (terminal-record
//!   elision removes attribute-free framing records),
//! * total bytes written (dead-attribute elimination and copy-chain
//!   collapsing shrink the records that remain),
//! * warm wall time per evaluation,
//! * the generated AOT evaluator's source size (what `rustc` has to
//!   chew through on the compiled path).
//!
//! Both runs are checked byte-identical on their outputs before any
//! timing, so the snapshot cannot report savings for an optimizer that
//! changed the translation. The snapshot lands in
//! `target/BENCH_opt_effect.json`; the repo root carries a committed
//! copy with the measured numbers, gated by `scripts/verify.sh`.

use linguist_ag::analysis::Config;
use linguist_ag::passes::Direction;
use linguist_bench::{rule, write_snapshot};
use linguist_codegen::rustgen;
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, Backing, EvalOptions, Strategy};
use linguist_frontend::driver::{run, DriverOptions};
use linguist_frontend::report::synthesize_tree;
use std::fmt::Write as _;
use std::time::Instant;

const BUDGET: usize = 256;
const ITERS: u32 = 30;
const BATCHES: u32 = 5;

/// Best-of-`BATCHES` mean microseconds per call, `ITERS` calls per
/// batch. The minimum batch is the least scheduler-disturbed estimate —
/// the per-evaluation work here is small enough (tens of µs) that a
/// single preemption inside one batch would otherwise dominate the
/// comparison between the two modes.
fn time_us(mut f: impl FnMut()) -> f64 {
    f(); // warm
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e6 / ITERS as f64);
    }
    best
}

struct ModeRow {
    passes: usize,
    records_written: u64,
    bytes_written: u64,
    wall_us: f64,
    aot_source_bytes: usize,
}

fn measure(source: &str, optimize: bool, budget: usize, funcs: &Funcs) -> (Vec<u8>, ModeRow) {
    let opts = DriverOptions {
        config: Config {
            optimize,
            ..Config::default()
        },
        ..DriverOptions::default()
    };
    let analysis = run(source, &opts)
        .expect("bundled grammar analyzes")
        .analysis;
    let tree = synthesize_tree(&analysis.grammar, budget).expect("finite derivation");
    let strategy = match analysis.passes.direction(1) {
        Direction::RightToLeft => Strategy::BottomUp,
        Direction::LeftToRight => Strategy::Prefix,
    };
    let eval_opts = EvalOptions {
        strategy,
        profile: true,
        backing: Backing::Memory,
        ..EvalOptions::default()
    };
    let eval = evaluate(&analysis, funcs, &tree, &eval_opts).expect("evaluates");
    let metrics = eval.metrics.as_ref().expect("profiled");
    let records_written: u64 = metrics.initial_records
        + metrics
            .passes
            .iter()
            .map(|p| p.records_written)
            .sum::<u64>();
    let bytes_written: u64 =
        metrics.initial_bytes + metrics.passes.iter().map(|p| p.bytes_written).sum::<u64>();
    let wall_us = time_us(|| {
        evaluate(&analysis, funcs, &tree, &eval_opts).expect("evaluates");
    });
    let mut outputs = Vec::new();
    for (a, v) in &eval.outputs {
        outputs.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut outputs);
    }
    let row = ModeRow {
        passes: metrics.passes.len(),
        records_written,
        bytes_written,
        wall_us,
        aot_source_bytes: rustgen::rust_source(&analysis).len(),
    };
    (outputs, row)
}

fn main() {
    rule("grammar-optimizer effect: --opt=off vs --opt=on");
    let grammars = [
        ("calc", linguist_grammars::calc_source(), BUDGET),
        ("knuth", linguist_grammars::knuth_source(), 48),
        ("block", linguist_grammars::block_source(), BUDGET),
        ("meta", linguist_grammars::meta_source(), BUDGET),
        ("pascal", linguist_grammars::pascal_source(), BUDGET),
    ];
    let funcs = Funcs::standard();
    println!(
        "{:<8} {:>6} {:>10} {:>10} {:>10} {:>12}  mode",
        "grammar", "passes", "rec-out", "bytes-out", "wall-us", "aot-src-B"
    );
    let mut json = String::from("{\"budget\":");
    let _ = write!(json, "{},\"iters\":{},\"grammars\":{{", BUDGET, ITERS);
    for (i, (name, source, budget)) in grammars.iter().enumerate() {
        let (base_out, base) = measure(source, false, *budget, &funcs);
        let (opt_out, opt) = measure(source, true, *budget, &funcs);
        assert_eq!(
            base_out, opt_out,
            "{}: optimized outputs are not byte-identical",
            name
        );
        assert!(
            opt.passes <= base.passes && opt.records_written <= base.records_written,
            "{}: optimizer increased work",
            name
        );
        for (mode, r) in [("off", &base), ("on", &opt)] {
            println!(
                "{:<8} {:>6} {:>10} {:>10} {:>10.0} {:>12}  opt={}",
                name,
                r.passes,
                r.records_written,
                r.bytes_written,
                r.wall_us,
                r.aot_source_bytes,
                mode
            );
        }
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "{:?}:{{", name);
        for (j, (mode, r)) in [("off", &base), ("on", &opt)].iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{:?}:{{\"passes\":{},\"records_written\":{},\"bytes_written\":{},\"wall_us\":{:.1},\"aot_source_bytes\":{}}}",
                mode, r.passes, r.records_written, r.bytes_written, r.wall_us, r.aot_source_bytes
            );
        }
        json.push('}');
    }
    json.push_str("}}");
    write_snapshot("opt_effect", &json);
}
