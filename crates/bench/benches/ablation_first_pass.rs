//! E14 — the two §II bootstrap strategies.
//!
//! "LINGUIST-86 supports both of these strategies … The only difference
//! in the attribute evaluators is whether the first attribute evaluation
//! pass is right-to-left (the first approach) or left-to-right (the
//! second approach)." We run the same workloads both ways: results must
//! agree; pass counts may differ per grammar (a direction can suit a
//! grammar's flow better).

use linguist_ag::analysis::Config;
use linguist_ag::passes::{Direction, PassConfig};
use linguist_bench::{analyze, median_time, rule, us};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{EvalOptions, Strategy};
use linguist_frontend::driver::DriverOptions;
use linguist_frontend::Translator;
use linguist_grammars::{
    block_program, block_scanner, block_source, calc_scanner, calc_source, pascal_program,
    pascal_scanner, pascal_source,
};

fn options(first: Direction) -> DriverOptions {
    DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: first,
                max_passes: 16,
            },
            ..Config::default()
        },
        ..DriverOptions::default()
    }
}

fn main() {
    rule("E14: bottom-up (R-L first) vs prefix (L-R first) strategies");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "grammar", "passes R-L", "passes L-R", "time R-L", "time L-R", "agree"
    );

    let funcs = Funcs::standard();
    for (name, src, scanner, input) in [
        (
            "calc",
            calc_source(),
            calc_scanner as fn() -> linguist_lexgen::Scanner,
            "1+2*(3+4)-5".to_owned(),
        ),
        (
            "pascal",
            pascal_source(),
            pascal_scanner as fn() -> linguist_lexgen::Scanner,
            pascal_program(6, 60),
        ),
        (
            "block",
            block_source(),
            block_scanner as fn() -> linguist_lexgen::Scanner,
            block_program(4, 6),
        ),
    ] {
        let rl = analyze(src, &options(Direction::RightToLeft));
        let lr = analyze(src, &options(Direction::LeftToRight));
        let passes_rl = rl.stats.passes;
        let passes_lr = lr.stats.passes;
        let t_rl = Translator::new(rl.analysis, scanner()).expect("translator");
        let t_lr = Translator::new(lr.analysis, scanner()).expect("translator");
        let opts_rl = EvalOptions {
            strategy: Strategy::BottomUp,
            check_globals: false,
            ..EvalOptions::default()
        };
        let opts_lr = EvalOptions {
            strategy: Strategy::Prefix,
            check_globals: false,
            ..EvalOptions::default()
        };
        let r1 = t_rl.translate(&input, &funcs, &opts_rl).expect("R-L run");
        let r2 = t_lr.translate(&input, &funcs, &opts_lr).expect("L-R run");
        let agree = r1
            .outputs
            .iter()
            .map(|(_, v)| v)
            .eq(r2.outputs.iter().map(|(_, v)| v));
        assert!(agree, "{}: the two strategies must agree", name);

        let d_rl = median_time(5, || {
            let _ = t_rl.translate(&input, &funcs, &opts_rl);
        });
        let d_lr = median_time(5, || {
            let _ = t_lr.translate(&input, &funcs, &opts_lr);
        });
        println!(
            "{:<10} {:>12} {:>12} {:>14} {:>14} {:>8}",
            name,
            passes_rl,
            passes_lr,
            us(d_rl),
            us(d_lr),
            "yes"
        );
    }
    println!("\n(LINGUIST-86 itself used the bottom-up method; both must compute identical translations)");
}
