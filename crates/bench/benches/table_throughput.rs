//! E11 — the §V throughput comparison.
//!
//! Paper: LINGUIST-86 processes attribute grammars at 350–500 lines per
//! minute (its own grammar) and "a little more than 400" (the Pascal
//! grammar), against host compilers at 400–900 lines/min — i.e. the two
//! grammars process at comparable rates and the TWS is competitive in
//! magnitude with ordinary translators. We reproduce the *ratio* between
//! the two grammar workloads and report absolute lines/min for the
//! record.

use linguist_bench::{analyze, rule};
use linguist_frontend::driver::DriverOptions;
use linguist_grammars::{block_source, calc_source, meta_source, pascal_source};

fn lines_per_minute(src: &str, runs: usize) -> f64 {
    // Best-of-n to squeeze out noise; the metric excludes generation time
    // exactly as the paper does.
    (0..runs)
        .map(|_| analyze(src, &DriverOptions::default()).lines_per_minute())
        .fold(f64::MIN, f64::max)
}

fn main() {
    rule("E11: processing throughput (paper §V)");
    println!("paper: LINGUIST grammar 350-500 lines/min; Pascal grammar ~400+ lines/min; host compilers 400-900\n");

    let meta = lines_per_minute(meta_source(), 5);
    let pascal = lines_per_minute(pascal_source(), 5);
    let block = lines_per_minute(block_source(), 5);
    let calc = lines_per_minute(calc_source(), 5);

    println!("{:<10} {:>16} ", "grammar", "lines/min");
    for (name, v) in [
        ("meta", meta),
        ("pascal", pascal),
        ("block", block),
        ("calc", calc),
    ] {
        println!("{:<10} {:>16.0}", name, v);
    }
    let ratio = pascal / meta;
    println!(
        "\npascal/meta throughput ratio: {:.2} (paper: ~400/425 = 0.94; same order, \"reasonably competitive\")",
        ratio
    );
    assert!(
        ratio > 0.2 && ratio < 5.0,
        "the two grammar workloads process at comparable rates"
    );
}
