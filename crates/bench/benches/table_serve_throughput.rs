//! Resident-service throughput: cold vs warm translation requests.
//!
//! Not a paper table — the original is strictly batch — but the
//! measurement that justifies the daemon: how much of a request's cost
//! is the frontend pipeline (paid once per grammar by the session
//! cache) versus the translation itself (paid per request)? A **cold**
//! `translate` carries inline grammar source the daemon has never seen,
//! so it compiles (overlays 1–4, LALR tables) and then evaluates; a
//! **warm** one addresses the resident compiled grammar and goes
//! straight to evaluation. Same request shape, same evaluation work —
//! the difference is the amortized frontend run.
//!
//! The meta grammar (the self-application workload, 4 alternating
//! passes) carries the cold/warm comparison; the calculator measures
//! sustained warm request throughput. Everything runs through the real
//! wire path — Unix-domain socket, newline-delimited JSON, worker
//! pool — so the figures include protocol overhead, not just cache
//! lookups.

use linguist_bench::{rule, write_snapshot};
use linguist_serve::client::Client;
use linguist_serve::server::{Server, ServerConfig};
use linguist_support::json::Json;
use std::time::{Duration, Instant};

const COLD_ROUNDS: usize = 6;
const WARM_ROUNDS: usize = 20;
const THROUGHPUT_ROUNDS: usize = 60;
const TREE_BUDGET: i64 = 200;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn assert_ok(reply: &Json) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        reply
    );
}

fn main() {
    rule("resident service: cold (compile+evaluate) vs warm (cache+evaluate)");

    let sock =
        std::env::temp_dir().join(format!("linguist-bench-serve-{}.sock", std::process::id()));
    let _unused = std::fs::remove_file(&sock);
    let handle = Server::start(ServerConfig {
        unix_path: Some(sock.clone()),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: COLD_ROUNDS + 4,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let mut client = Client::connect_unix(&sock).expect("connect");

    // Cold: each request inlines a distinct grammar text (a comment
    // suffices to change the content hash), forcing a frontend run
    // before the synthetic-tree evaluation.
    let meta = linguist_grammars::meta_source();
    let cold: Vec<Duration> = (0..COLD_ROUNDS)
        .map(|i| {
            let source = format!("{}\n# cold variant {}\n", meta, i);
            let started = Instant::now();
            let reply = client
                .roundtrip(&Json::Obj(vec![
                    ("op".to_string(), Json::str("translate")),
                    ("source".to_string(), Json::str(&source)),
                    ("budget".to_string(), Json::int(TREE_BUDGET)),
                ]))
                .expect("cold translate round-trips");
            let took = started.elapsed();
            assert_ok(&reply);
            took
        })
        .collect();

    // Warm: the same evaluation against the resident compiled grammar.
    let loaded = client
        .load_grammar(meta, None, Some("meta"))
        .expect("load meta");
    assert_ok(&loaded);
    let meta_key = loaded
        .get("grammar")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();
    let warm: Vec<Duration> = (0..WARM_ROUNDS)
        .map(|_| {
            let started = Instant::now();
            let reply = client
                .translate_budget(&meta_key, TREE_BUDGET as usize, None)
                .expect("warm translate round-trips");
            let took = started.elapsed();
            assert_ok(&reply);
            took
        })
        .collect();

    // Sustained warm throughput on the calculator: scan + parse +
    // evaluate per request, compile paid exactly once.
    let loaded = client
        .load_grammar(linguist_grammars::calc_source(), Some("calc"), Some("calc"))
        .expect("load calc");
    assert_ok(&loaded);
    let calc_key = loaded
        .get("grammar")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();
    let throughput_started = Instant::now();
    for i in 0..THROUGHPUT_ROUNDS {
        let input = format!("({} + {}) * {}", i, i % 7 + 1, i % 5 + 2);
        let reply = client
            .translate_input(&calc_key, &input, None)
            .expect("calc translate round-trips");
        assert_ok(&reply);
    }
    let throughput_wall = throughput_started.elapsed();
    let warm_per_sec = THROUGHPUT_ROUNDS as f64 / throughput_wall.as_secs_f64();

    let store = handle.state().store_stats();
    // The whole point of the cache: COLD_ROUNDS meta variants + meta +
    // calc were analyzed exactly once each, however many requests ran.
    assert_eq!(store.analyses as usize, COLD_ROUNDS + 2);

    let cold_med = median(cold.clone());
    let warm_med = median(warm.clone());
    println!("{:<34} {:>12}", "request (meta grammar)", "median");
    println!(
        "{:<34} {:>9.2} ms",
        format!("cold translate (x{})", COLD_ROUNDS),
        ms(cold_med)
    );
    println!(
        "{:<34} {:>9.2} ms",
        format!("warm translate (x{})", WARM_ROUNDS),
        ms(warm_med)
    );
    println!(
        "{:<34} {:>9.2} ms",
        "amortized frontend run",
        ms(cold_med.saturating_sub(warm_med))
    );
    println!(
        "\ncold/warm ratio: {:.1}x; calc warm throughput: {:.0} requests/sec \
         (analyses: {}, hits: {}, misses: {})",
        ms(cold_med) / ms(warm_med).max(1e-6),
        warm_per_sec,
        store.analyses,
        store.hits,
        store.misses
    );

    let cold_rows: Vec<String> = cold.iter().map(|d| format!("{:.3}", ms(*d))).collect();
    let warm_rows: Vec<String> = warm.iter().map(|d| format!("{:.3}", ms(*d))).collect();
    write_snapshot(
        "table_serve_throughput",
        &format!(
            "{{\"bench\":\"table_serve_throughput\",\
              \"tree_budget\":{},\"cold_rounds\":{},\"warm_rounds\":{},\
              \"cold_ms\":[{}],\"warm_ms\":[{}],\
              \"cold_median_ms\":{:.3},\"warm_median_ms\":{:.3},\
              \"calc_warm_per_sec\":{:.1},\
              \"store\":{{\"analyses\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}}}}",
            TREE_BUDGET,
            COLD_ROUNDS,
            WARM_ROUNDS,
            cold_rows.join(","),
            warm_rows.join(","),
            ms(cold_med),
            ms(warm_med),
            warm_per_sec,
            store.analyses,
            store.hits,
            store.misses,
            store.evictions,
        ),
    );

    let mut client2 = Client::connect_unix(&sock).expect("reconnect");
    client2.shutdown().expect("shutdown acked");
    handle.wait();
}
