//! Checkpoint overhead and recovery latency.
//!
//! Not a paper table — the 1986 system restarted failed translations
//! from scratch — but the natural robustness experiment over the same
//! pass-structured runtime: what does durably checkpointing every pass
//! boundary (manifest + fsync) cost an uninterrupted run, and how much
//! faster is crash recovery that resumes from the newest surviving
//! boundary than a restart from scratch?

use linguist_bench::{median_time, rule, us, write_snapshot};
use linguist_eval::aptfile::{FaultSpec, FaultTarget};
use linguist_eval::machine::{evaluate, evaluate_resumable, EvalOptions, Evaluation, Strategy};
use linguist_eval::Funcs;
use linguist_frontend::translate::standard_intrinsics;
use linguist_frontend::{run, DriverOptions, Translator};
use linguist_grammars::{block_program, block_scanner, block_source};
use linguist_support::intern::NameTable;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "linguist86-bench-ckpt-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    rule("checkpoint overhead + recovery latency (block grammar)");

    let analysis = run(block_source(), &DriverOptions::default())
        .expect("block grammar analyzes")
        .analysis;
    let tr = Translator::new(analysis, block_scanner()).expect("block translator builds");
    let funcs = Funcs::standard();
    let strategy = match tr.analysis.passes.direction(1) {
        linguist_ag::passes::Direction::RightToLeft => Strategy::BottomUp,
        linguist_ag::passes::Direction::LeftToRight => Strategy::Prefix,
    };
    let opts = EvalOptions {
        strategy,
        ..EvalOptions::default()
    };
    let num_passes = tr.analysis.passes.num_passes() as u16;

    let src = block_program(40, 6);
    let mut names = NameTable::new();
    let tree = tr
        .parse_input(&src, &standard_intrinsics, &mut names)
        .expect("generated block program parses");
    println!(
        "{}-pass evaluation over a {}-node tree\n",
        num_passes,
        tree.size()
    );

    const RUNS: usize = 15;

    // -- uninterrupted: plain vs checkpointed ------------------------------
    let plain = median_time(RUNS, || {
        evaluate(&tr.analysis, &funcs, &tree, &opts).expect("plain run");
    });
    let ckpt_dir = scratch_dir("overhead");
    let checkpointed = median_time(RUNS, || {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        evaluate_resumable(&tr.analysis, &funcs, &tree, &opts, &ckpt_dir)
            .expect("checkpointed run");
    });
    let overhead = checkpointed.as_secs_f64() / plain.as_secs_f64().max(f64::MIN_POSITIVE) - 1.0;
    println!("{:<34} {:>12}", "plain evaluate", us(plain));
    println!(
        "{:<34} {:>12}  (+{:.0}%)",
        "checkpointed (manifest + fsync)",
        us(checkpointed),
        overhead * 100.0
    );

    // -- crashed at the last pass: resume vs restart ----------------------
    // The crash scenario: a one-shot write fault kills the final pass, so
    // every earlier boundary survives on disk with a valid manifest.
    let crash_dir = scratch_dir("recovery");
    let crashed_opts = EvalOptions {
        fault: Some(FaultSpec::new(num_passes, FaultTarget::Write, 0)),
        ..opts.clone()
    };
    evaluate_resumable(&tr.analysis, &funcs, &tree, &crashed_opts, &crash_dir)
        .expect_err("injected crash at the final pass");

    let reference = evaluate(&tr.analysis, &funcs, &tree, &opts).expect("reference");
    let resume = median_time(RUNS, || {
        let eval = Evaluation::resume(&tr.analysis, &funcs, &opts, &crash_dir)
            .expect("resume from surviving boundaries");
        assert_eq!(eval.outputs, reference.outputs, "resume must agree");
    });
    let restart = median_time(RUNS, || {
        evaluate(&tr.analysis, &funcs, &tree, &opts).expect("restart from scratch");
    });
    let speedup = restart.as_secs_f64() / resume.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "{:<34} {:>12}",
        format!("restart after crash at pass {}", num_passes),
        us(restart)
    );
    println!(
        "{:<34} {:>12}  ({:.2}x faster)",
        "resume from newest boundary",
        us(resume),
        speedup
    );

    let json = format!(
        "{{\"passes\":{},\"tree_nodes\":{},\"plain_us\":{},\"checkpointed_us\":{},\"overhead_fraction\":{:.4},\"restart_us\":{},\"resume_us\":{},\"recovery_speedup\":{:.4}}}",
        num_passes,
        tree.size(),
        plain.as_micros(),
        checkpointed.as_micros(),
        overhead,
        restart.as_micros(),
        resume.as_micros(),
        speedup
    );
    write_snapshot("checkpoint_overhead", &json);

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}
