//! E7 — the §IV statistics table.
//!
//! Paper (for LINGUIST-86's own 1800-line grammar): 159 symbols, 318
//! attributes, 72 productions, 1202 attribute-occurrences, 584 semantic
//! functions, 302 copy-rules (a little more than 50%), 276 implicit,
//! evaluable in 4 alternating passes.

use linguist_bench::{analyze, rule};
use linguist_frontend::driver::DriverOptions;
use linguist_grammars::{block_source, calc_source, meta_source, pascal_source};

fn main() {
    rule("E7: grammar statistics (paper §IV)");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}",
        "grammar", "symbols", "attrs", "prods", "occs", "semfns", "copies", "implicit", "passes"
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}   <- the paper's LINGUIST-86 row",
        "paper", 159, 318, 72, 1202, 584, 302, 276, 4
    );
    for (name, src) in [
        ("meta", meta_source()),
        ("pascal", pascal_source()),
        ("block", block_source()),
        ("calc", calc_source()),
    ] {
        let out = analyze(src, &DriverOptions::default());
        let s = out.stats;
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}",
            name,
            s.symbols,
            s.attributes,
            s.productions,
            s.occurrences,
            s.semantic_functions,
            s.copy_rules,
            s.implicit_copy_rules,
            s.passes
        );
    }
    let meta = analyze(meta_source(), &DriverOptions::default());
    println!(
        "\nmeta copy fraction: {:.0}% (paper: 'a little more than 50%'); implicit share of copies: {:.0}% (paper: 276/302 = 91%)",
        100.0 * meta.stats.copy_fraction(),
        100.0 * meta.stats.implicit_copy_rules as f64 / meta.stats.copy_rules.max(1) as f64,
    );
    assert_eq!(
        meta.stats.passes, 4,
        "the meta grammar needs 4 passes, like the paper's"
    );
}
