//! E10 — the §V overlay timing table.
//!
//! Paper (processing LINGUIST-86's own grammar on the 8086):
//!   parser 80 s, eval-1 25 s, eval-2 42 s, evaluability 9 s,
//!   eval-3 24 s, listing 63 s, TOTAL 243 s.
//! Shape claims: the pipeline is I/O-and-text-bound — the parser and the
//! listing generator are the heavy overlays; the evaluability test is a
//! minor cost. We also evaluate a workload through the generated
//! translator and show the per-pass byte traffic that makes the
//! evaluation passes I/O-bound.

use linguist_bench::{analyze, median_time, rule, us};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::EvalOptions;
use linguist_frontend::driver::{DriverOptions, OverlayTimings};
use linguist_frontend::Translator;
use linguist_grammars::{meta_scanner, meta_source, pascal_source};
use std::time::Duration;

fn main() {
    rule("E10: overlay timings (paper §V)");
    println!("paper (8086, seconds): parser 80 | sem-1 25 | sem-2 42 | evaluability 9 | listing 63 | TOTAL 243\n");

    // Median-of-5 overlay timings for the meta grammar.
    let mut best: Option<OverlayTimings> = None;
    let mut total = Duration::MAX;
    for _ in 0..5 {
        let out = analyze(meta_source(), &DriverOptions::default());
        if out.timings.total() < total {
            total = out.timings.total();
            best = Some(out.timings);
        }
    }
    let t = best.expect("ran");
    println!("measured (meta grammar, this machine):");
    println!("             parser overlay - {:>10}", us(t.parser));
    println!("   semantic analysis 1 (O2) - {:>10}", us(t.semantic1));
    println!("   semantic analysis 2 (O3) - {:>10}", us(t.semantic2));
    println!("  evaluability test    (O4) - {:>10}", us(t.evaluability));
    println!("  message collection   (O5) - {:>10}", us(t.messages));
    println!("  listing generation   (O6) - {:>10}", us(t.listing));
    for (i, g) in t.generation.iter().enumerate() {
        println!("  evaluator gen pass {} (O7) - {:>10}", i + 1, us(*g));
    }
    println!("                      TOTAL - {:>10}", us(t.total()));

    let front_heavy = t.parser + t.listing;
    let analysis_cost = t.evaluability;
    println!(
        "\nparser+listing share: {:.0}% of non-generation time (paper: (80+63)/243 = 59%)",
        100.0 * front_heavy.as_secs_f64() / t.total_excluding_generation().as_secs_f64()
    );
    println!(
        "evaluability share:   {:.0}% (paper: 9/243 = 4%)",
        100.0 * analysis_cost.as_secs_f64() / t.total_excluding_generation().as_secs_f64()
    );

    // Evaluation passes are I/O bound: every pass moves the whole APT
    // through the intermediate files.
    rule("evaluation-pass byte traffic (the I/O-bound claim)");
    let out = analyze(meta_source(), &DriverOptions::default());
    let translator = Translator::new(out.analysis, meta_scanner()).expect("meta translator");
    let funcs = Funcs::standard();
    let r = translator
        .translate(pascal_source(), &funcs, &EvalOptions::default())
        .expect("lint pascal.lg");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>10}",
        "pass", "read B", "written B", "records", "time"
    );
    for (i, p) in r.stats.passes.iter().enumerate() {
        println!(
            "{:<6} {:>12} {:>12} {:>10} {:>10}",
            i + 1,
            p.bytes_read,
            p.bytes_written,
            p.records_read,
            us(p.duration)
        );
    }
    println!(
        "\ntotal APT traffic: {} bytes over {} passes; peak stack residency only {} bytes",
        r.stats.total_io_bytes(),
        r.stats.passes.len(),
        r.stats.meter.peak()
    );

    // Rough sanity timing for repeat runs.
    let median = median_time(5, || {
        let _ = translator.translate(pascal_source(), &funcs, &EvalOptions::default());
    });
    println!("median evaluation time: {}", us(median));
}
