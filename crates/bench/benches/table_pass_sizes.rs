//! E9 — the §V per-pass evaluator sizes.
//!
//! Paper:  pass 1 - 4292 bytes, pass 2 - 6538, pass 3 - 5414,
//!         pass 4 - 7215, husk - 4065.
//! Claims to reproduce in shape: the husk ("overhead") is a significant
//! share of each module and identical across passes; different passes
//! carry visibly different semantic loads.

use linguist_bench::{analyze, rule};
use linguist_codegen::{generate, Target};
use linguist_frontend::driver::DriverOptions;
use linguist_grammars::meta_source;

fn main() {
    rule("E9: per-pass evaluator module sizes (paper §V)");
    let out = analyze(meta_source(), &DriverOptions::default());
    let evaluator = generate(&out.analysis, Target::Pascal);

    println!("paper:    pass 1 - 4292 B   pass 2 - 6538 B   pass 3 - 5414 B   pass 4 - 7215 B   husk - 4065 B\n");
    print!("measured:");
    for p in &evaluator.passes {
        print!("  pass {} - {} B", p.pass, p.total_bytes());
    }
    println!("   husk - {} B", evaluator.husk_bytes());

    println!(
        "\n{:<8} {:>10} {:>10} {:>12} {:>10}",
        "pass", "total B", "husk B", "semantic B", "husk %"
    );
    for p in &evaluator.passes {
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>9.0}%",
            p.pass,
            p.total_bytes(),
            p.husk_bytes,
            p.semantic_bytes,
            100.0 * p.husk_bytes as f64 / p.total_bytes() as f64
        );
    }

    // Shape checks.
    let husks: Vec<usize> = evaluator.passes.iter().map(|p| p.husk_bytes).collect();
    assert!(
        husks.windows(2).all(|w| w[0] == w[1]),
        "the husk is the same for every pass (§V)"
    );
    let sem: Vec<usize> = evaluator.passes.iter().map(|p| p.semantic_bytes).collect();
    let min = sem.iter().min().unwrap();
    let max = sem.iter().max().unwrap();
    assert!(max > min, "passes carry different semantic loads");
    let husk_share = evaluator.husk_bytes() as f64
        / evaluator
            .passes
            .iter()
            .map(|p| p.total_bytes())
            .max()
            .unwrap() as f64;
    println!(
        "\nhusk share of the largest pass: {:.0}% — \"the 'overhead' in the attribute evaluators is significant\"",
        100.0 * husk_share
    );
    assert!(husk_share > 0.25);
}
