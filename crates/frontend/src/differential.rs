//! Differential-execution oracle over one grammar + synthesized tree.
//!
//! One fuzz case is a pretty-printed `.lg` source plus a node budget.
//! The source is the *canonical artifact*: every execution mode starts
//! by re-deriving the analysis from the same text through the full
//! frontend (scanner, LALR parser, `lower_with_spans`, implicit copies,
//! pass analysis), and the input tree is re-synthesized deterministically
//! from the analysis by [`synthesize_tree`] — which is also exactly what
//! the `serve` daemon does for a `Budget` work item, so a fourth,
//! out-of-process mode can join the comparison from nothing but the same
//! source string.
//!
//! [`run_case`] runs the three in-process modes —
//!
//! 1. plain sequential [`evaluate`],
//! 2. the parallel [`BatchEvaluator`] (8 workers, 8 copies of the tree),
//! 3. [`evaluate_resumable`] once, then crash-resume at *every* pass
//!    boundary: the manifest is truncated back to each boundary in turn
//!    and [`Evaluation::resume`] must rebuild the identical result,
//!
//! — plus, opt-in (`LINGUIST_DIFF_COMPILED=1` or
//! [`CaseOptions::compiled`]), a fifth mode: the grammar's generated
//! Rust evaluator, JIT-compiled by the `linguist-engine` build cache and
//! required to reproduce the baseline's `encoded_outputs` byte for byte
//! — plus, default-on (`LINGUIST_DIFF_OPT=0` disables,
//! [`CaseOptions::optimized`]), a sixth mode: the same source
//! re-analyzed with the grammar optimizer on and evaluated over the
//! baseline's tree, required to be byte-identical *and* to never
//! increase the pass count or records written —
//! and reports any disagreement as a [`Divergence`] naming the mode,
//! the first offending attribute, and the pass that computes it. It also
//! checks the [`EvalMetrics`] conservation laws (pass N+1 reads exactly
//! what pass N wrote) and the subsumption-transparency invariant
//! (`globals_repaired == 0`) on the sequential baseline.
//!
//! Failing cases can be shrunk with [`minimize`] (budget halving, then
//! whole-production removal at the source level) and persisted as
//! replayable corpus fixtures with [`persist_fixture`] /
//! [`load_fixture`].

use crate::driver::analyze;
use crate::report::synthesize_tree;
use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::passes::Direction;
use linguist_eval::batch::BatchEvaluator;
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{
    evaluate, evaluate_resumable, Backing, EvalOptions, Evaluation, Strategy,
};
use linguist_eval::manifest::Manifest;
use linguist_eval::tree::PTree;
use std::path::Path;

/// One disagreement between execution modes (or one violated invariant).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which mode disagreed with the sequential baseline.
    pub mode: String,
    /// The first output attribute whose value differs, if attributable.
    pub attr: Option<String>,
    /// The pass that computes that attribute.
    pub pass: Option<u16>,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.mode)?;
        if let Some(a) = &self.attr {
            write!(f, " attr {}", a)?;
        }
        if let Some(p) = self.pass {
            write!(f, " (pass {})", p)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of running one case through the in-process modes.
#[derive(Debug)]
pub struct CaseResult {
    /// The shared analysis (all modes re-derive exactly this from source).
    pub analysis: Analysis,
    /// The deterministically synthesized input tree.
    pub tree: PTree,
    /// The sequential baseline evaluation (with metrics).
    pub baseline: Evaluation,
    /// Everything that disagreed; empty means the oracle is satisfied.
    pub divergences: Vec<Divergence>,
}

/// Canonical byte encoding of an evaluation's outputs — the
/// "byte-identical APT output" acceptance criterion compares these.
pub fn encoded_outputs(eval: &Evaluation) -> Vec<u8> {
    let mut buf = Vec::new();
    for (a, v) in &eval.outputs {
        buf.extend_from_slice(&a.0.to_le_bytes());
        v.encode(&mut buf);
    }
    buf
}

/// The initial-file strategy the pass analysis demands — the same choice
/// `serve` makes for its jobs, so all four modes agree on it.
pub fn strategy_for(analysis: &Analysis) -> Strategy {
    match analysis.passes.direction(1) {
        Direction::RightToLeft => Strategy::BottomUp,
        Direction::LeftToRight => Strategy::Prefix,
    }
}

/// Evaluation options every mode runs under: matching strategy, profile
/// on (for the conservation checks).
pub fn eval_opts(analysis: &Analysis) -> EvalOptions {
    EvalOptions {
        strategy: strategy_for(analysis),
        profile: true,
        ..EvalOptions::default()
    }
}

/// Compare `candidate` against `baseline`; on mismatch produce a
/// [`Divergence`] naming the first differing attribute and its pass.
fn compare(
    analysis: &Analysis,
    mode: &str,
    baseline: &Evaluation,
    candidate: &Evaluation,
) -> Option<Divergence> {
    if encoded_outputs(baseline) == encoded_outputs(candidate) {
        return None;
    }
    let g = &analysis.grammar;
    for (i, (a, v)) in baseline.outputs.iter().enumerate() {
        match candidate.outputs.get(i) {
            Some((ca, cv)) if ca == a && cv == v => continue,
            Some((ca, cv)) => {
                return Some(Divergence {
                    mode: mode.to_owned(),
                    attr: Some(g.attr_name(*a).to_owned()),
                    pass: Some(analysis.passes.pass_of(*a)),
                    detail: format!(
                        "output {} expected {}.{} = {}, got {}.{} = {}",
                        i,
                        g.symbol_name(g.attr(*a).symbol),
                        g.attr_name(*a),
                        v,
                        g.symbol_name(g.attr(*ca).symbol),
                        g.attr_name(*ca),
                        cv
                    ),
                });
            }
            None => {
                return Some(Divergence {
                    mode: mode.to_owned(),
                    attr: Some(g.attr_name(*a).to_owned()),
                    pass: Some(analysis.passes.pass_of(*a)),
                    detail: format!("candidate has only {} outputs", candidate.outputs.len()),
                });
            }
        }
    }
    Some(Divergence {
        mode: mode.to_owned(),
        attr: None,
        pass: None,
        detail: format!(
            "byte encodings differ but outputs agree prefix-wise \
             (baseline {} outputs, candidate {})",
            baseline.outputs.len(),
            candidate.outputs.len()
        ),
    })
}

fn failure(mode: &str, detail: String) -> Divergence {
    Divergence {
        mode: mode.to_owned(),
        attr: None,
        pass: None,
        detail,
    }
}

/// Optional oracle legs for [`run_case_with`].
#[derive(Clone, Debug)]
pub struct CaseOptions {
    /// Run the compiled-engine leg: JIT-compile the grammar's generated
    /// Rust evaluator and require its raw output bytes to equal the
    /// sequential baseline's `encoded_outputs`. Off by default — every
    /// novel grammar costs one `rustc` invocation — and skipped loudly
    /// (not failed) when `rustc` is unavailable.
    pub compiled: bool,
    /// Run the optimized-grammar leg: re-analyze the same source with
    /// the grammar optimizer on, evaluate over the *baseline's* tree,
    /// and require byte-identical `encoded_outputs` plus the work
    /// conservation law (the optimizer must never increase the pass
    /// count or the records written). On by default — it is pure
    /// interpretation, no `rustc` involved.
    pub optimized: bool,
}

impl Default for CaseOptions {
    fn default() -> CaseOptions {
        CaseOptions {
            compiled: false,
            optimized: true,
        }
    }
}

impl CaseOptions {
    /// Environment-driven default: `LINGUIST_DIFF_COMPILED=1` turns the
    /// compiled leg on for callers going through [`run_case`];
    /// `LINGUIST_DIFF_OPT=0` turns the (default-on) optimized leg off.
    pub fn from_env() -> CaseOptions {
        let compiled = std::env::var("LINGUIST_DIFF_COMPILED")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let optimized = std::env::var("LINGUIST_DIFF_OPT")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(true);
        CaseOptions {
            compiled,
            optimized,
        }
    }
}

/// Run one case through sequential, parallel-batch, and
/// crash-resume-at-every-boundary modes — plus the compiled-engine leg
/// when `LINGUIST_DIFF_COMPILED` is set (see [`CaseOptions`]).
///
/// # Errors
///
/// `Err` means no baseline could be established (the source failed to
/// analyze, tree synthesis came up empty, or the sequential evaluation
/// itself failed) — for generated grammars those are themselves
/// findings, reported with mode `"baseline"`.
pub fn run_case(source: &str, budget: usize, scratch: &Path) -> Result<CaseResult, Divergence> {
    run_case_with(source, budget, scratch, &CaseOptions::from_env())
}

/// [`run_case`] with explicit [`CaseOptions`].
///
/// # Errors
///
/// Same as [`run_case`].
pub fn run_case_with(
    source: &str,
    budget: usize,
    scratch: &Path,
    case_opts: &CaseOptions,
) -> Result<CaseResult, Divergence> {
    let analysis = analyze(source, &Config::default())
        .map_err(|e| failure("baseline", format!("analyze failed: {}", e)))?;
    let tree = synthesize_tree(&analysis.grammar, budget.max(1))
        .ok_or_else(|| failure("baseline", "synthesize_tree returned no tree".into()))?;
    let funcs = Funcs::standard();
    let opts = eval_opts(&analysis);

    let baseline = evaluate(&analysis, &funcs, &tree, &opts)
        .map_err(|e| failure("baseline", format!("sequential evaluation failed: {}", e)))?;
    let mut divergences = Vec::new();

    // Subsumption must be output-transparent: a repaired global means the
    // protocol caught itself producing a wrong value.
    if baseline.stats.globals_repaired != 0 {
        divergences.push(failure(
            "sequential",
            format!(
                "globals_repaired = {} (subsumption protocol not transparent)",
                baseline.stats.globals_repaired
            ),
        ));
    }
    divergences.extend(metrics_violations(&baseline));

    // Mode 2: parallel batch, 8 workers × 8 copies of the same tree, on
    // the shared-nothing owned-store path the production batch uses —
    // the oracle's byte-identity check is what proves that path safe.
    let batch_opts = EvalOptions {
        backing: Backing::Memory,
        ..opts.clone()
    };
    let batch = BatchEvaluator::with_options(8, batch_opts);
    let trees: Vec<PTree> = (0..8).map(|_| tree.clone()).collect();
    let outcome = batch.run(&analysis, &funcs, &trees);
    for (j, result) in outcome.results.iter().enumerate() {
        match result {
            Ok(eval) => {
                if let Some(d) = compare(&analysis, &format!("parallel[{}]", j), &baseline, eval) {
                    divergences.push(d);
                }
            }
            Err(e) => divergences.push(failure(
                &format!("parallel[{}]", j),
                format!("job failed: {}", e),
            )),
        }
    }
    // The shared-nothing invariant itself: the owned-store batch leg
    // must not have taken a single store lock.
    if outcome.stats.lock_acquisitions != 0 {
        divergences.push(failure(
            "parallel",
            format!(
                "owned-store batch took {} store lock acquisitions (expected 0)",
                outcome.stats.lock_acquisitions
            ),
        ));
    }

    // Mode 3: checkpointed run, then resume from every boundary.
    divergences.extend(resume_at_every_boundary(
        &analysis, &funcs, &tree, &opts, &baseline, scratch,
    ));

    // Mode 5 (opt-in): the compiled engine. The interpreter's plans and
    // the generated Rust evaluator walk the same grammar — their output
    // bytes must be identical.
    if case_opts.compiled {
        divergences.extend(compiled_divergences(&analysis, &tree, &opts, &baseline));
    }

    // Mode 6 (default-on): the optimized grammar. Constant folding,
    // copy-chain collapsing, dead-attribute elimination and record
    // elision together must be semantics-preserving: same source, same
    // tree, byte-identical outputs, never more work.
    if case_opts.optimized {
        divergences.extend(optimized_divergences(source, &tree, &funcs, &baseline));
    }

    Ok(CaseResult {
        analysis,
        tree,
        baseline,
        divergences,
    })
}

/// Mode 5: JIT-compile the grammar's generated evaluator and compare
/// its raw output bytes against the baseline's `encoded_outputs`.
///
/// A grammar the frontend accepted whose generated evaluator fails to
/// *build* is itself a divergence (codegen bug); `rustc` being absent is
/// an environment limitation and skips loudly instead. One engine (and
/// its content-addressed build cache) is shared process-wide, so corpus
/// replays and repeated cases compile each distinct grammar once.
fn compiled_divergences(
    analysis: &Analysis,
    tree: &PTree,
    opts: &EvalOptions,
    baseline: &Evaluation,
) -> Vec<Divergence> {
    use linguist_engine::{Engine, EngineConfig, EngineKind};
    use std::sync::OnceLock;

    if !linguist_engine::jit::rustc_available() {
        eprintln!("differential: SKIP compiled leg (rustc unavailable)");
        return Vec::new();
    }
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    let engine = ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            kind: EngineKind::CompiledJit,
            optimize: false,
            cache_dir: None,
        })
    });
    let prepared = engine.prepare(analysis);
    if let Some(reason) = prepared.fallback() {
        return vec![failure(
            "compiled",
            format!("generated evaluator did not build: {}", reason),
        )];
    }
    match engine.compiled_output_bytes(&prepared, analysis, tree, opts) {
        Err(e) => vec![failure("compiled", format!("compiled run failed: {}", e))],
        Ok(bytes) => {
            let want = encoded_outputs(baseline);
            if bytes == want {
                Vec::new()
            } else {
                let at = bytes
                    .iter()
                    .zip(want.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| bytes.len().min(want.len()));
                vec![failure(
                    "compiled",
                    format!(
                        "output bytes diverge at offset {} (compiled {} bytes, \
                         interpreter {} bytes)",
                        at,
                        bytes.len(),
                        want.len()
                    ),
                )]
            }
        }
    }
}

/// Mode 6: re-derive the analysis with the grammar optimizer on and
/// evaluate over the baseline's tree (the optimizer never renumbers
/// symbols, productions, or attributes, so the tree is valid under both
/// analyses). The optimized run must reproduce the baseline's
/// `encoded_outputs` byte for byte, satisfy the same metrics
/// conservation laws, and obey the work-conservation law: neither the
/// pass count nor the total records written may increase.
fn optimized_divergences(
    source: &str,
    tree: &PTree,
    funcs: &Funcs,
    baseline: &Evaluation,
) -> Vec<Divergence> {
    let cfg = Config {
        optimize: true,
        ..Config::default()
    };
    let analysis = match analyze(source, &cfg) {
        Ok(a) => a,
        Err(e) => {
            return vec![failure(
                "optimized",
                format!("optimized analyze failed where baseline analyzed: {}", e),
            )]
        }
    };
    let opts = eval_opts(&analysis);
    let eval = match evaluate(&analysis, funcs, tree, &opts) {
        Ok(e) => e,
        Err(e) => {
            return vec![failure(
                "optimized",
                format!("optimized evaluation failed: {}", e),
            )]
        }
    };
    let mut out = Vec::new();
    if let Some(d) = compare(&analysis, "optimized", baseline, &eval) {
        out.push(d);
    }
    out.extend(metrics_violations(&eval).into_iter().map(|mut d| {
        d.mode = "optimized-metrics".into();
        d
    }));
    if let (Some(bm), Some(om)) = (&baseline.metrics, &eval.metrics) {
        let base_written: u64 = bm.passes.iter().map(|p| p.records_written).sum();
        let opt_written: u64 = om.passes.iter().map(|p| p.records_written).sum();
        if om.passes.len() > bm.passes.len() || opt_written > base_written {
            out.push(failure(
                "optimized",
                format!(
                    "optimizer increased work: {} -> {} passes, {} -> {} records written",
                    bm.passes.len(),
                    om.passes.len(),
                    base_written,
                    opt_written
                ),
            ));
        }
    }
    out
}

/// The metrics conservation laws on a profiled evaluation: pass 1 reads
/// the initial file exactly; every later pass reads exactly what its
/// predecessor wrote.
fn metrics_violations(eval: &Evaluation) -> Vec<Divergence> {
    let mut out = Vec::new();
    let Some(m) = &eval.metrics else {
        out.push(failure(
            "metrics",
            "profiling was on but no metrics were collected".into(),
        ));
        return out;
    };
    if let Some(first) = m.passes.first() {
        if first.records_read != m.initial_records || first.bytes_read != m.initial_bytes {
            out.push(Divergence {
                mode: "metrics".into(),
                attr: None,
                pass: Some(first.pass),
                detail: format!(
                    "pass 1 read {} records / {} bytes, initial file has {} / {}",
                    first.records_read, first.bytes_read, m.initial_records, m.initial_bytes
                ),
            });
        }
    }
    for w in m.passes.windows(2) {
        if w[1].records_read != w[0].records_written || w[1].bytes_read != w[0].bytes_written {
            out.push(Divergence {
                mode: "metrics".into(),
                attr: None,
                pass: Some(w[1].pass),
                detail: format!(
                    "pass {} read {} records / {} bytes but pass {} wrote {} / {}",
                    w[1].pass,
                    w[1].records_read,
                    w[1].bytes_read,
                    w[0].pass,
                    w[0].records_written,
                    w[0].bytes_written
                ),
            });
        }
    }
    out
}

/// Checkpoint once, then for each boundary `b` (newest first) truncate
/// the manifest back to `b`, delete every later boundary file, and
/// resume. Each resume must restart exactly at `b` and reproduce the
/// baseline bytes.
fn resume_at_every_boundary(
    analysis: &Analysis,
    funcs: &Funcs,
    tree: &PTree,
    opts: &EvalOptions,
    baseline: &Evaluation,
    scratch: &Path,
) -> Vec<Divergence> {
    use linguist_eval::aptfile::boundary_path;
    let mut out = Vec::new();
    let dir = scratch.join("ckpt");
    let _ = std::fs::remove_dir_all(&dir);

    let full = match evaluate_resumable(analysis, funcs, tree, opts, &dir) {
        Ok(e) => e,
        Err(e) => {
            out.push(failure(
                "resume",
                format!("checkpointed evaluation failed: {}", e),
            ));
            return out;
        }
    };
    if let Some(d) = compare(analysis, "resume[full]", baseline, &full) {
        out.push(d);
    }

    let num_passes = analysis.passes.num_passes() as u16;
    for b in (0..num_passes).rev() {
        // Simulate a crash that lost everything after boundary b. (Each
        // resume re-records later boundaries, so truncate fresh per b.)
        let mode = format!("resume[{}]", b);
        let manifest = match Manifest::load(&dir) {
            Ok(m) => m,
            Err(e) => {
                out.push(failure(&mode, format!("manifest reload failed: {}", e)));
                return out;
            }
        };
        let mut truncated = Manifest::new(&manifest.strategy, manifest.num_passes);
        for e in manifest.entries.iter().filter(|e| e.pass <= b) {
            truncated.record(*e);
        }
        if let Err(e) = truncated.save(&dir) {
            out.push(failure(&mode, format!("manifest truncation failed: {}", e)));
            return out;
        }
        for later in (b + 1)..num_passes {
            let _ = std::fs::remove_file(boundary_path(&dir, later));
        }
        match Evaluation::resume(analysis, funcs, opts, &dir) {
            Ok(resumed) => {
                if resumed.stats.resumed_from != Some(b) {
                    out.push(failure(
                        &mode,
                        format!(
                            "expected resume from boundary {}, resumed from {:?}",
                            b, resumed.stats.resumed_from
                        ),
                    ));
                }
                if let Some(d) = compare(analysis, &mode, baseline, &resumed) {
                    out.push(d);
                }
            }
            Err(e) => out.push(failure(&mode, format!("resume failed: {}", e))),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

// ---------------------------------------------------------------------------
// Corpus fixtures: persistable, replayable failing (or pinned) cases.
// ---------------------------------------------------------------------------

/// Write `source` + `budget` (+ the divergence that motivated it) as a
/// replayable `.lg` fixture. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn persist_fixture(
    dir: &Path,
    name: &str,
    source: &str,
    budget: usize,
    why: &str,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.lg", name));
    let mut text = String::new();
    text.push_str(&format!("# budget: {}\n", budget));
    for line in why.lines() {
        text.push_str(&format!("# why: {}\n", line));
    }
    text.push_str(source);
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Read a fixture back: `(source, budget)`. The `# budget:` header is
/// part of the fixture contract; a missing one defaults to 16.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn load_fixture(path: &Path) -> std::io::Result<(String, usize)> {
    let text = std::fs::read_to_string(path)?;
    let budget = text
        .lines()
        .find_map(|l| l.strip_prefix("# budget:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(16);
    Ok((text, budget))
}

/// Greedy shrink of a failing case: halve the tree budget while the
/// failure persists, then drop whole productions from the source (text
/// level — the printer emits one `prod … end` block per production)
/// while the result still analyzes *and* still fails.
pub fn minimize(
    source: &str,
    budget: usize,
    still_fails: &dyn Fn(&str, usize) -> bool,
) -> (String, usize) {
    let mut src = source.to_owned();
    let mut budget = budget;
    while budget > 2 && still_fails(&src, budget / 2) {
        budget /= 2;
    }
    loop {
        let mut shrunk = false;
        let blocks = prod_blocks(&src);
        for (start, end) in blocks {
            let mut lines: Vec<&str> = src.lines().collect();
            lines.drain(start..=end);
            let candidate = lines.join("\n");
            if analyze(&candidate, &Config::default()).is_ok() && still_fails(&candidate, budget) {
                src = candidate;
                shrunk = true;
                break; // line indices shifted; recompute blocks
            }
        }
        if !shrunk {
            return (src, budget);
        }
    }
}

/// Line ranges (inclusive) of each `prod … end` block in printed source.
fn prod_blocks(source: &str) -> Vec<(usize, usize)> {
    let lines: Vec<&str> = source.lines().collect();
    let mut blocks = Vec::new();
    let mut start = None;
    for (i, l) in lines.iter().enumerate() {
        if l.trim_start().starts_with("prod ") && start.is_none() {
            start = Some(i);
        } else if *l == "end" {
            if let Some(s) = start.take() {
                blocks.push((s, i));
            }
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    // Two passes in *either* first direction: a.I needs bq.V (a
    // right-to-left edge) while bq.I needs a.V (a left-to-right edge),
    // so whichever direction pass 1 runs, one of the W attributes lands
    // in pass 2.
    const TWO_PASS: &str = r#"
grammar TwoPass ;
terminals x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  a : syn V int, inh I int, syn W int ;
  bq : syn V int, inh I int, syn W int ;
start s ;
productions
prod s = a bq :
  a.I = bq.V ;
  bq.I = a.V ;
  s.V = a.W + bq.W ;
end
prod a = x :
  a.V = x.OBJ + 100 ;
  a.W = a.I + 1 ;
end
prod bq = x :
  bq.V = x.OBJ ;
  bq.W = bq.I + 3 ;
end
end
"#;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "linguist86-differential-{}-{}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn two_pass_case_agrees_across_modes() {
        let dir = scratch("twopass");
        let r = run_case(TWO_PASS, 16, &dir).unwrap();
        assert_eq!(
            r.divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>(),
            Vec::<String>::new()
        );
        assert!(r.analysis.passes.num_passes() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixtures_roundtrip_through_disk() {
        let dir = scratch("fixture");
        let p = persist_fixture(&dir, "case", TWO_PASS, 12, "pinned\nexample").unwrap();
        let (text, budget) = load_fixture(&p).unwrap();
        assert_eq!(budget, 12);
        assert!(text.contains("# why: pinned"));
        assert!(text.contains("grammar TwoPass ;"));
        // The fixture (comments included) is itself runnable source.
        let r = run_case(&text, budget, &dir).unwrap();
        assert!(r.divergences.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minimize_shrinks_budget_and_keeps_failure() {
        // A synthetic "failure": cases with budget >= 4 and source still
        // containing the `a = x` production "fail".
        let fails = |src: &str, budget: usize| budget >= 4 && src.contains("prod a = x");
        let (src, budget) = minimize(TWO_PASS, 32, &fails);
        assert_eq!(budget, 4);
        assert!(src.contains("prod a = x"));
        // The unused leaf production for `bq` can never be dropped while
        // the grammar must keep analyzing (bq would lose its only
        // derivation), so the minimizer must keep the source analyzable.
        assert!(analyze(&src, &Config::default()).is_ok());
    }

    #[test]
    fn prod_blocks_sees_every_production() {
        assert_eq!(prod_blocks(TWO_PASS).len(), 3);
    }
}
