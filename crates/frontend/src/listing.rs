//! Listing-file generation (overlay 6).
//!
//! "The sixth overlay creates the listing output file." The listing shows
//! the numbered source interleaved with diagnostics, then each production
//! with its semantic functions annotated `# pass N` (as in the paper's
//! p.165 reproduction of a LINGUIST-86 production), with "each implicit
//! copy-rule … listed immediately after all of the explicit semantic
//! functions of the production", an attribute table (class, type, pass,
//! temporary/significant, static), and the §IV statistics block.

use linguist_ag::analysis::Analysis;
use linguist_ag::expr::Expr;
use linguist_ag::grammar::{AttrClass, RuleOrigin};
use linguist_ag::ids::{AttrId, AttrOcc, ProdId, RuleId};
use linguist_support::diag::Diagnostics;
use std::fmt::Write as _;

/// Render the complete listing.
pub fn render_listing(source: &str, analysis: &Analysis, diags: &Diagnostics) -> String {
    let mut out = String::new();
    let g = &analysis.grammar;

    out.push_str("LINGUIST-86 LISTING\n");
    out.push_str("===================\n\n");

    // Source with interleaved diagnostics.
    let sorted = diags.sorted_for_listing();
    let mut diag_ix = 0;
    for (ln, line) in source.lines().enumerate() {
        let ln = ln as u32 + 1;
        let _ = writeln!(out, "{:5} | {}", ln, line);
        while diag_ix < sorted.len() && sorted[diag_ix].span.start.line == ln {
            let _ = writeln!(out, "      | **** {}", render_diag(sorted[diag_ix]));
            diag_ix += 1;
        }
    }
    for d in &sorted[diag_ix..] {
        let _ = writeln!(out, "      | **** {}", render_diag(d));
    }

    // Productions with pass-annotated semantic functions.
    out.push_str("\nPRODUCTIONS\n-----------\n");
    for (pi, prod) in g.productions().iter().enumerate() {
        let prod_id = ProdId(pi as u32);
        let mut head = format!("p{}: {} =", pi, g.symbol_name(prod.lhs));
        for &r in &prod.rhs {
            head.push(' ');
            head.push_str(g.symbol_name(r));
        }
        if let Some(l) = prod.limb {
            head.push_str(" -> ");
            head.push_str(g.symbol_name(l));
        }
        let _ = writeln!(out, "\n{}", head);
        // Explicit rules first, then implicit (the paper's ordering).
        for phase in [RuleOrigin::Explicit, RuleOrigin::Implicit] {
            for &r in &prod.rules {
                let rule = g.rule(r);
                if rule.origin != phase {
                    continue;
                }
                let marker = if phase == RuleOrigin::Implicit {
                    " (implicit)"
                } else {
                    ""
                };
                let subsumed = if analysis.subsumption.is_subsumed(r) {
                    " (subsumed)"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    {}   # pass {}{}{}",
                    render_rule(analysis, prod_id, r),
                    analysis.passes.rule_pass(r),
                    marker,
                    subsumed,
                );
            }
        }
    }

    // Attribute table.
    out.push_str("\nATTRIBUTES\n----------\n");
    let _ = writeln!(
        out,
        "{:<28} {:<11} {:<10} {:>4}  {:<11} {:<6}",
        "attribute", "class", "type", "pass", "lifetime", "static"
    );
    for (ai, attr) in g.attrs().iter().enumerate() {
        let a = AttrId(ai as u32);
        let name = format!("{}.{}", g.symbol_name(attr.symbol), g.attr_name(a));
        let class = match attr.class {
            AttrClass::Synthesized => "synthesized",
            AttrClass::Inherited => "inherited",
            AttrClass::Intrinsic => "intrinsic",
            AttrClass::Limb => "limb",
        };
        let lifetime = if analysis.lifetimes.is_significant(a) {
            "significant"
        } else {
            "temporary"
        };
        let is_static = if analysis.subsumption.is_static(a) {
            "yes"
        } else {
            "no"
        };
        let _ = writeln!(
            out,
            "{:<28} {:<11} {:<10} {:>4}  {:<11} {:<6}",
            name,
            class,
            g.resolve(attr.type_name),
            analysis.passes.pass_of(a),
            lifetime,
            is_static
        );
    }

    // Pass directions.
    out.push_str("\nPASSES\n------\n");
    for (k, d) in analysis.passes.directions().iter().enumerate() {
        let _ = writeln!(out, "pass {}: {}", k + 1, d);
    }

    // Statistics (§IV block).
    out.push_str("\nSTATISTICS\n----------\n");
    let _ = writeln!(out, "{}", analysis.stats());
    out
}

/// One interleaved diagnostic line: `severity[CODE]: message`, the
/// code bracket present only for coded (lint-framework) diagnostics.
fn render_diag(d: &linguist_support::diag::Diagnostic) -> String {
    match d.code {
        Some(c) => format!("{}[{}]: {}", d.severity, c, d.message),
        None => format!("{}: {}", d.severity, d.message),
    }
}

/// Render one semantic function like `S1.A = IncrIfZero(T.B, S0.A)`.
pub fn render_rule(analysis: &Analysis, prod: ProdId, r: RuleId) -> String {
    let g = &analysis.grammar;
    let rule = g.rule(r);
    let targets: Vec<String> = rule
        .targets
        .iter()
        .map(|t| render_occ(analysis, prod, *t))
        .collect();
    format!(
        "{} = {}",
        targets.join(" & "),
        render_expr(analysis, prod, &rule.expr)
    )
}

fn render_occ(analysis: &Analysis, prod: ProdId, occ: AttrOcc) -> String {
    let g = &analysis.grammar;
    let sym = g.symbol_at(prod, occ.pos).expect("valid occurrence");
    // Use the occurrence-suffix convention when the symbol repeats.
    let p = g.production(prod);
    let count = usize::from(p.lhs == sym) + p.rhs.iter().filter(|&&r| r == sym).count();
    let base = g.symbol_name(sym);
    let prefix = if count > 1 {
        let ord = match occ.pos {
            linguist_ag::ids::OccPos::Lhs => 0,
            linguist_ag::ids::OccPos::Rhs(i) => {
                usize::from(p.lhs == sym)
                    + p.rhs[..i as usize].iter().filter(|&&r| r == sym).count()
            }
            linguist_ag::ids::OccPos::Limb => 0,
        };
        format!("{}{}", base, ord)
    } else {
        base.to_owned()
    };
    match occ.pos {
        linguist_ag::ids::OccPos::Limb => g.attr_name(occ.attr).to_owned(),
        _ => format!("{}.{}", prefix, g.attr_name(occ.attr)),
    }
}

/// Unparse an expression back to (near-)surface syntax.
pub fn render_expr(analysis: &Analysis, prod: ProdId, e: &Expr) -> String {
    let g = &analysis.grammar;
    match e {
        Expr::Occ(o) => render_occ(analysis, prod, *o),
        Expr::Int(i) => i.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Str(s) => format!("'{}'", s),
        Expr::Const(n) => g.resolve(*n).to_owned(),
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| render_expr(analysis, prod, a))
                .collect();
            format!("{}({})", g.resolve(*func), rendered.join(", "))
        }
        Expr::Binop { op, lhs, rhs } => format!(
            "{} {} {}",
            render_expr(analysis, prod, lhs),
            op,
            render_expr(analysis, prod, rhs)
        ),
        Expr::If {
            branches,
            otherwise,
        } => {
            let mut out = String::new();
            for (i, (c, arm)) in branches.iter().enumerate() {
                let kw = if i == 0 { "if" } else { " elsif" };
                let arm_s: Vec<String> =
                    arm.iter().map(|x| render_expr(analysis, prod, x)).collect();
                let _ = write!(
                    out,
                    "{} {} then {}",
                    kw,
                    render_expr(analysis, prod, c),
                    arm_s.join(", ")
                );
            }
            let else_s: Vec<String> = otherwise
                .iter()
                .map(|x| render_expr(analysis, prod, x))
                .collect();
            let _ = write!(out, " else {} endif", else_s.join(", "));
            out
        }
    }
}
