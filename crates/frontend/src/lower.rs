//! Lowering: AST → the attribute-grammar core.
//!
//! Resolves symbol and attribute names, decodes the Figure-1 occurrence
//! convention (`S0` = the LHS occurrence of `S`, `S1` the next, …;
//! unsuffixed names are allowed only for symbols occurring once in the
//! production), classifies bare identifiers as limb attributes or
//! uninterpreted constants (§IV), and hands a [`linguist_ag::Grammar`] to
//! the analysis pipeline.

use crate::ast::*;
use linguist_ag::expr::{BinOp, Expr};
use linguist_ag::grammar::{AgBuilder, BuildError, Grammar};
use linguist_ag::ids::{AttrId, AttrOcc, OccPos, SymbolId};
use linguist_ag::lint::SpanMap;
use linguist_support::pos::Span;
use std::collections::HashMap;
use std::fmt;

/// A name-resolution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError {
    /// Where in the source.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for LowerError {}

impl From<BuildError> for LowerError {
    fn from(e: BuildError) -> LowerError {
        LowerError {
            span: Span::default(),
            message: e.to_string(),
        }
    }
}

/// Lower a parsed file into a structural grammar.
///
/// # Errors
///
/// Returns every resolution error found (the grammar is only built if all
/// names resolve).
pub fn lower(file: &AgFile) -> Result<Grammar, Vec<LowerError>> {
    lower_with_spans(file).map(|(g, _)| g)
}

/// Lower a parsed file, also returning the source span of every symbol,
/// attribute, production, and explicit rule — parallel to the grammar's
/// dense-id tables, the way the lint layer wants them.
///
/// # Errors
///
/// Same as [`lower`].
pub fn lower_with_spans(file: &AgFile) -> Result<(Grammar, SpanMap), Vec<LowerError>> {
    let mut errors: Vec<LowerError> = Vec::new();
    let mut b = AgBuilder::new();
    let mut spans = SpanMap::default();

    // Pass 1: symbols and attributes (the paper's dictionary).
    let mut sym_of: HashMap<String, SymbolId> = HashMap::new();
    let mut attr_of: HashMap<(SymbolId, String), AttrId> = HashMap::new();
    for decl in &file.symbols {
        if sym_of.contains_key(&decl.name) {
            errors.push(LowerError {
                span: decl.span,
                message: format!("symbol `{}` declared twice", decl.name),
            });
            continue;
        }
        let id = match decl.kind {
            SymKind::Terminal => b.terminal(&decl.name),
            SymKind::Nonterminal => b.nonterminal(&decl.name),
            SymKind::Limb => b.limb(&decl.name),
        };
        spans.symbols.push(decl.span);
        sym_of.insert(decl.name.clone(), id);
        for a in &decl.attrs {
            let allowed = matches!(
                (decl.kind, a.kind),
                (SymKind::Terminal, AttrKind::Intrinsic)
                    | (SymKind::Terminal, AttrKind::Inherited)
                    | (SymKind::Nonterminal, AttrKind::Synthesized)
                    | (SymKind::Nonterminal, AttrKind::Inherited)
                    | (SymKind::Limb, AttrKind::Local)
            );
            if !allowed {
                errors.push(LowerError {
                    span: a.span,
                    message: format!(
                        "attribute `{}` has class {:?}, not allowed on a {:?} symbol",
                        a.name, a.kind, decl.kind
                    ),
                });
                continue;
            }
            if attr_of.contains_key(&(id, a.name.clone())) {
                // Located here; the builder would otherwise report the
                // duplicate with no position at build() time.
                errors.push(LowerError {
                    span: a.span,
                    message: format!(
                        "attribute `{}` declared twice on symbol `{}`",
                        a.name, decl.name
                    ),
                });
                continue;
            }
            let aid = match a.kind {
                AttrKind::Synthesized => b.synthesized(id, &a.name, &a.type_name),
                AttrKind::Inherited => b.inherited(id, &a.name, &a.type_name),
                AttrKind::Intrinsic => b.intrinsic(id, &a.name, &a.type_name),
                AttrKind::Local => b.limb_attr(id, &a.name, &a.type_name),
            };
            spans.attrs.push(a.span);
            attr_of.insert((id, a.name.clone()), aid);
        }
    }

    // Start symbol.
    match sym_of.get(&file.start) {
        Some(&s) => b.start(s),
        None => errors.push(LowerError {
            span: file.start_span,
            message: format!("start symbol `{}` is not declared", file.start),
        }),
    }

    // Pass 2: productions and semantic functions.
    for pd in &file.productions {
        let Some((lhs_sym, lhs_ord)) = resolve_occ_name(&pd.lhs, &sym_of) else {
            errors.push(LowerError {
                span: pd.span,
                message: format!("unknown symbol in occurrence `{}`", pd.lhs),
            });
            continue;
        };
        let mut rhs_syms: Vec<SymbolId> = Vec::new();
        let mut bad = false;
        let mut rhs_resolved: Vec<(SymbolId, Option<usize>)> = Vec::new();
        for occ in &pd.rhs {
            match resolve_occ_name(occ, &sym_of) {
                Some((s, ord)) => {
                    rhs_syms.push(s);
                    rhs_resolved.push((s, ord));
                }
                None => {
                    errors.push(LowerError {
                        span: pd.span,
                        message: format!("unknown symbol in occurrence `{}`", occ),
                    });
                    bad = true;
                }
            }
        }
        let limb_sym = match &pd.limb {
            None => None,
            Some(l) => match sym_of.get(l) {
                Some(&s) => Some(s),
                None => {
                    errors.push(LowerError {
                        span: pd.span,
                        message: format!("unknown limb symbol `{}`", l),
                    });
                    bad = true;
                    None
                }
            },
        };
        if bad {
            continue;
        }

        // Verify the occurrence ordinals: each symbol's occurrences,
        // counted LHS-first then left to right, must match any explicit
        // suffixes; unsuffixed occurrences require a unique position.
        let mut occ_pos: HashMap<String, OccPos> = HashMap::new();
        {
            let count_of = |s: SymbolId| -> usize {
                usize::from(lhs_sym == s) + rhs_syms.iter().filter(|&&r| r == s).count()
            };
            let mut check = |name: &str,
                             sym: SymbolId,
                             ord: Option<usize>,
                             actual_ord: usize,
                             pos: OccPos,
                             errors: &mut Vec<LowerError>| {
                let n = count_of(sym);
                match ord {
                    None if n > 1 => errors.push(LowerError {
                        span: pd.span,
                        message: format!(
                            "occurrence `{}` is ambiguous: symbol occurs {} times; use numeric suffixes",
                            name, n
                        ),
                    }),
                    Some(o) if o != actual_ord => errors.push(LowerError {
                        span: pd.span,
                        message: format!(
                            "occurrence `{}` has suffix {} but is occurrence {} of its symbol",
                            name, o, actual_ord
                        ),
                    }),
                    _ => {
                        occ_pos.insert(name.to_owned(), pos);
                    }
                }
            };
            check(&pd.lhs, lhs_sym, lhs_ord, 0, OccPos::Lhs, &mut errors);
            let mut seen: HashMap<SymbolId, usize> = HashMap::new();
            for (i, ((sym, ord), name)) in rhs_resolved.iter().zip(pd.rhs.iter()).enumerate() {
                let base = usize::from(lhs_sym == *sym);
                let k = seen.entry(*sym).or_insert(0);
                let actual = base + *k;
                *k += 1;
                check(name, *sym, *ord, actual, OccPos::Rhs(i as u16), &mut errors);
            }
        }

        let prod = b.production(lhs_sym, rhs_syms.clone(), limb_sym);
        spans.productions.push(pd.span);

        // Rules.
        for rd in &pd.rules {
            let ctx = OccCtx {
                occ_pos: &occ_pos,
                lhs_sym,
                rhs_syms: &rhs_syms,
                limb_sym,
                attr_of: &attr_of,
                sym_of: &sym_of,
            };
            let mut ok = true;
            let mut targets = Vec::new();
            for t in &rd.targets {
                match resolve_target(t, &ctx) {
                    Ok(occ) => targets.push(occ),
                    Err(e) => {
                        errors.push(e);
                        ok = false;
                    }
                }
            }
            let expr = match lower_expr(&rd.expr, &ctx, &mut b) {
                Ok(e) => e,
                Err(e) => {
                    errors.push(e);
                    ok = false;
                    Expr::Int(0)
                }
            };
            if ok {
                b.rule(prod, targets, expr);
                spans.rules.push(rd.span);
            }
        }
    }

    if !errors.is_empty() {
        return Err(errors);
    }
    b.build().map(|g| (g, spans)).map_err(|e| vec![e.into()])
}

/// Resolve an occurrence name like `expr1` to `(symbol, Some(1))`, or a
/// bare `term` to `(symbol, None)`.
fn resolve_occ_name(
    name: &str,
    sym_of: &HashMap<String, SymbolId>,
) -> Option<(SymbolId, Option<usize>)> {
    if let Some(&s) = sym_of.get(name) {
        return Some((s, None));
    }
    let trimmed = name.trim_end_matches(|c: char| c.is_ascii_digit());
    if trimmed.len() < name.len() {
        if let Some(&s) = sym_of.get(trimmed) {
            let ord: usize = name[trimmed.len()..].parse().ok()?;
            return Some((s, Some(ord)));
        }
    }
    None
}

struct OccCtx<'a> {
    occ_pos: &'a HashMap<String, OccPos>,
    lhs_sym: SymbolId,
    rhs_syms: &'a [SymbolId],
    limb_sym: Option<SymbolId>,
    attr_of: &'a HashMap<(SymbolId, String), AttrId>,
    sym_of: &'a HashMap<String, SymbolId>,
}

impl<'a> OccCtx<'a> {
    fn symbol_at(&self, pos: OccPos) -> SymbolId {
        match pos {
            OccPos::Lhs => self.lhs_sym,
            OccPos::Rhs(i) => self.rhs_syms[i as usize],
            OccPos::Limb => self.limb_sym.expect("limb occurrence requires a limb"),
        }
    }

    fn resolve_qualified(&self, occ: &str, attr: &str, span: Span) -> Result<AttrOcc, LowerError> {
        let pos = self.occ_pos.get(occ).copied().ok_or_else(|| LowerError {
            span,
            message: if self.sym_of.contains_key(occ)
                || resolve_occ_name(occ, self.sym_of).is_some()
            {
                format!("`{}` does not occur in this production", occ)
            } else {
                format!("unknown occurrence `{}`", occ)
            },
        })?;
        let sym = self.symbol_at(pos);
        let aid = self
            .attr_of
            .get(&(sym, attr.to_owned()))
            .copied()
            .ok_or_else(|| LowerError {
                span,
                message: format!("`{}` has no attribute `{}`", occ, attr),
            })?;
        Ok(AttrOcc { pos, attr: aid })
    }

    fn resolve_limb_attr(&self, name: &str) -> Option<AttrOcc> {
        let limb = self.limb_sym?;
        let aid = self.attr_of.get(&(limb, name.to_owned())).copied()?;
        Some(AttrOcc::limb(aid))
    }
}

fn resolve_target(t: &TargetRef, ctx: &OccCtx<'_>) -> Result<AttrOcc, LowerError> {
    match t {
        TargetRef::Qualified { occ, attr, span } => ctx.resolve_qualified(occ, attr, *span),
        TargetRef::Bare { name, span } => ctx.resolve_limb_attr(name).ok_or_else(|| LowerError {
            span: *span,
            message: format!(
                "`{}` is not a limb attribute of this production (only limb attributes may be bare targets)",
                name
            ),
        }),
    }
}

fn lower_expr(e: &ExprAst, ctx: &OccCtx<'_>, b: &mut AgBuilder) -> Result<Expr, LowerError> {
    Ok(match e {
        ExprAst::Int(i) => Expr::Int(*i),
        ExprAst::Bool(v) => Expr::Bool(*v),
        ExprAst::Str(s) => Expr::Str(s.clone()),
        ExprAst::Qualified { occ, attr, span } => {
            Expr::Occ(ctx.resolve_qualified(occ, attr, *span)?)
        }
        ExprAst::Ident { name, .. } => match ctx.resolve_limb_attr(name) {
            Some(occ) => Expr::Occ(occ),
            // "any identifier that is not a grammar symbol, attribute, or
            // attribute type is treated as an uninterpreted constant".
            None => Expr::Const(b.name(name)),
        },
        ExprAst::Call { func, args, .. } => {
            let mut lowered = Vec::with_capacity(args.len());
            for a in args {
                lowered.push(lower_expr(a, ctx, b)?);
            }
            Expr::Call {
                func: b.name(func),
                args: lowered,
            }
        }
        ExprAst::Binop { op, lhs, rhs } => Expr::Binop {
            op: match op {
                BinOpAst::Add => BinOp::Add,
                BinOpAst::Sub => BinOp::Sub,
                BinOpAst::And => BinOp::And,
                BinOpAst::Or => BinOp::Or,
                BinOpAst::Eq => BinOp::Eq,
                BinOpAst::Ne => BinOp::Ne,
                BinOpAst::Gt => BinOp::Gt,
                BinOpAst::Lt => BinOp::Lt,
            },
            lhs: Box::new(lower_expr(lhs, ctx, b)?),
            rhs: Box::new(lower_expr(rhs, ctx, b)?),
        },
        ExprAst::If {
            branches,
            otherwise,
        } => {
            let mut lb = Vec::with_capacity(branches.len());
            for (c, arm) in branches {
                let mut larm = Vec::with_capacity(arm.len());
                for x in arm {
                    larm.push(lower_expr(x, ctx, b)?);
                }
                lb.push((lower_expr(c, ctx, b)?, larm));
            }
            let mut lo = Vec::with_capacity(otherwise.len());
            for x in otherwise {
                lo.push(lower_expr(x, ctx, b)?);
            }
            Expr::If {
                branches: lb,
                otherwise: lo,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use linguist_ag::grammar::{AttrClass, RuleOrigin};

    const CALC: &str = r#"
grammar Calc ;
terminals
  NUMBER : intrinsic VAL int ;
  PLUS ;
nonterminals
  expr : syn V int ;
  term : syn V int ;
limbs
  AddLimb : local TMP int ;
start expr ;
productions
prod expr0 = expr1 PLUS term -> AddLimb :
  TMP = term.V ;
  expr0.V = expr1.V + TMP ;
end
prod expr0 = term :
  expr0.V = term.V ;
end
prod term = NUMBER :
  term.V = NUMBER.VAL ;
end
end
"#;

    #[test]
    fn calc_lowers_to_grammar() {
        let g = lower(&parse(CALC).unwrap()).unwrap();
        assert_eq!(g.productions().len(), 3);
        assert_eq!(g.symbols().len(), 5);
        assert_eq!(g.rules().len(), 4);
        let expr = g.symbol_by_name("expr").unwrap();
        let v = g.attr_by_name(expr, "V").unwrap();
        assert_eq!(g.attr(v).class, AttrClass::Synthesized);
        // The copy rule term.V -> expr.V is explicit here.
        assert!(g.rules().iter().all(|r| r.origin == RuleOrigin::Explicit));
    }

    #[test]
    fn occurrence_suffixes_resolve_positions() {
        let g = lower(&parse(CALC).unwrap()).unwrap();
        // Production 0: expr0 = expr1 PLUS term. Rule expr0.V = expr1.V + TMP.
        let rule = &g.rules()[1];
        assert_eq!(rule.targets[0].pos, OccPos::Lhs);
        let args = rule.arguments();
        assert!(args.contains(&AttrOcc {
            pos: OccPos::Rhs(0),
            attr: rule.targets[0].attr, // expr.V (same attribute, child occurrence)
        }));
    }

    #[test]
    fn ambiguous_bare_occurrence_rejected() {
        let src = r#"
grammar T ;
terminals x ;
nonterminals s : syn V int ;
start s ;
productions
prod s = s x :
  s.V = 1 ;
end
end
"#;
        let errs = lower(&parse(src).unwrap()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("ambiguous")),
            "{:?}",
            errs
        );
    }

    #[test]
    fn wrong_suffix_rejected() {
        let src = r#"
grammar T ;
terminals x ;
nonterminals s : syn V int ;
start s ;
productions
prod s0 = s2 x :
  s0.V = 1 ;
end
prod s0 = x :
  s0.V = 0 ;
end
end
"#;
        let errs = lower(&parse(src).unwrap()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("suffix")),
            "{:?}",
            errs
        );
    }

    #[test]
    fn unknown_attribute_reported_with_position() {
        let src = r#"
grammar T ;
nonterminals s : syn V int ;
start s ;
productions
prod s = :
  s.MISSING = 1 ;
end
end
"#;
        let errs = lower(&parse(src).unwrap()).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("MISSING"));
        assert!(errs[0].span.start.line >= 6);
    }

    #[test]
    fn bare_identifiers_become_constants_or_limb_attrs() {
        let src = r#"
grammar T ;
nonterminals s : syn V name, syn W int ;
limbs L : local TMP int ;
start s ;
productions
prod s = -> L :
  TMP = 2 ;
  s.V = no$msg ;
  s.W = TMP ;
end
end
"#;
        let g = lower(&parse(src).unwrap()).unwrap();
        // s.V = no$msg is an uninterpreted constant…
        let v_rule = &g.rules()[1];
        assert!(matches!(v_rule.expr, Expr::Const(_)));
        // …while TMP is a limb attribute occurrence.
        let w_rule = &g.rules()[2];
        assert!(matches!(w_rule.expr, Expr::Occ(o) if o.pos == OccPos::Limb));
    }

    #[test]
    fn unknown_start_symbol_reported() {
        let src = "grammar T ;\nnonterminals s ;\nstart missing ;\nproductions\nend";
        let errs = lower(&parse(src).unwrap()).unwrap_err();
        assert!(errs[0].message.contains("start symbol"));
    }

    #[test]
    fn spans_parallel_the_dense_ids() {
        use linguist_ag::ids::ProdId;
        let file = parse(CALC).unwrap();
        let (g, spans) = lower_with_spans(&file).unwrap();
        assert_eq!(spans.symbols.len(), g.symbols().len());
        assert_eq!(spans.attrs.len(), g.attrs().len());
        assert_eq!(spans.productions.len(), g.productions().len());
        assert_eq!(spans.rules.len(), g.rules().len());
        let last = ProdId((g.productions().len() - 1) as u32);
        assert!(spans.production(last).start.line > spans.production(ProdId(0)).start.line);
        // Attribute spans point at the declaring line.
        let expr = g.symbol_by_name("expr").unwrap();
        let v = g.attr_by_name(expr, "V").unwrap();
        assert_eq!(spans.attr(v).start.line, 7);
    }

    #[test]
    fn duplicate_attribute_reported_with_position() {
        let src = r#"
grammar T ;
nonterminals s : syn V int, syn V int ;
start s ;
productions
prod s = :
  s.V = 1 ;
end
end
"#;
        let errs = lower(&parse(src).unwrap()).unwrap_err();
        assert_eq!(errs.len(), 1, "{:?}", errs);
        assert!(errs[0].message.contains("declared twice"));
        assert_eq!(errs[0].span.start.line, 3);
    }

    #[test]
    fn misclassified_attribute_reported() {
        let src = r#"
grammar T ;
terminals x : syn BAD int ;
nonterminals s ;
start s ;
productions
prod s = x : end
end
"#;
        let errs = lower(&parse(src).unwrap()).unwrap_err();
        assert!(errs[0].message.contains("not allowed"), "{:?}", errs);
    }
}
