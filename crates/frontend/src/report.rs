//! The `--profile` report: the paper's measurement tables, live.
//!
//! §IV and §V of the paper characterize a translator writing system by
//! numbers: the grammar-statistics row ("159 symbols, 318 attributes,
//! …"), the copy-rule fraction and how much of it static subsumption
//! eliminates, the alternating-pass schedule, and the per-pass traffic
//! through the two intermediate APT files. [`ProfileReport`] regenerates
//! all of that for any compiled grammar:
//!
//! * the static half comes from [`GrammarProfile`] (overlay-4 products);
//! * the dynamic half comes from actually *running* the generated
//!   evaluator, profiled, over a synthetic parse tree grown from the
//!   grammar itself ([`synthesize_tree`]) — no input program is needed.
//!
//! Rendered either as aligned text tables or as JSON (assembled with
//! the shared [`linguist_support::json`] module; the toolchain has no
//! serialization dependency).

use linguist_ag::analysis::Analysis;
use linguist_ag::grammar::{AttrClass, Grammar, SymbolKind};
use linguist_ag::ids::{ProdId, SymbolId};
use linguist_ag::passes::Direction;
use linguist_ag::stats::GrammarProfile;
use linguist_engine::{Engine, EngineConfig, EngineKind};
use linguist_eval::aptfile::ReadDir;
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{
    evaluate, evaluate_resumable, Backing, EvalOptions, Evaluation, RetryPolicy, Strategy,
};
use linguist_eval::metrics::EvalMetrics;
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use linguist_support::json::{escape as json_str, number as json_f64};
use std::fmt::Write as _;

/// Node budget for the synthetic exercise tree when the caller does not
/// choose one: large enough that every pass moves real file traffic,
/// small enough to stay far under the 48 KB dynamic-memory budget.
pub const DEFAULT_TREE_BUDGET: usize = 200;

/// Recovery knobs for the dynamic half of the report — what the CLI's
/// `--retries`, `--checkpoint-dir` and `--resume` flags map to.
#[derive(Clone, Debug, Default)]
pub struct RecoveryOpts {
    /// Transient-failure policy for the profiled evaluation.
    pub retry: RetryPolicy,
    /// Checkpoint every pass boundary into this directory.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from the checkpoint directory's manifest instead of
    /// starting fresh (falls back to a fresh checkpointed run when
    /// nothing resumable is found).
    pub resume: bool,
    /// Where the profiled evaluation keeps its intermediate APT. The
    /// default is [`Backing::Disk`] — the paper's configuration, so a
    /// single-grammar profile's I/O columns reflect real file traffic.
    /// The CLI's `--batch` mode overrides this to the shared-nothing
    /// [`Backing::Memory`] so concurrent jobs never contend on the
    /// filesystem. Ignored when a checkpoint directory is set (a
    /// checkpoint is durable by definition).
    pub backing: Backing,
    /// Which execution engine runs the profiled evaluation (the CLI's
    /// `--engine` flag). Compiled engines produce the same outputs but
    /// no pass-level I/O profile (that instrumentation lives in the
    /// interpreter), and they ignore retry/checkpoint/resume — so a
    /// compiled profile reports outputs, engine, and any degradation,
    /// while the per-pass table stays interpreter-only.
    pub engine: EngineKind,
}

/// The complete `--profile` report for one grammar.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Grammar name (from the source's `grammar … ;` header or the file).
    pub name: String,
    /// The static half: statistics, subsumption, pass schedule.
    pub grammar: GrammarProfile,
    /// Nodes in the synthetic tree the dynamic half evaluated (0 when no
    /// tree could be synthesized).
    pub tree_nodes: usize,
    /// The dynamic half: per-pass I/O and work counters, when the
    /// profiled evaluation ran to completion.
    pub eval: Option<EvalMetrics>,
    /// Why the dynamic half is missing, when it is (a semantic function
    /// rejecting the synthetic attribute values, say). The static half
    /// is still valid.
    pub eval_error: Option<String>,
    /// Pass retries the evaluation consumed recovering from transient
    /// failures (0 without a retry policy).
    pub retries: u64,
    /// The checkpoint boundary the evaluation restarted after, when it
    /// was resumed rather than run from scratch.
    pub resumed_from: Option<u16>,
    /// The engine that produced the dynamic half (`"interpreted"`,
    /// `"aot"`, `"jit"`); `None` when no evaluation was attempted.
    pub engine_used: Option<String>,
    /// Typed degradation reason when a compiled engine was requested but
    /// the interpreter answered (`code: detail`).
    pub engine_fallback: Option<String>,
    /// What the grammar optimizer did, when it ran (`--opt=on`):
    /// `None` means the analysis was unoptimized.
    pub optimizer: Option<OptimizerSummary>,
}

/// The optimizer's headline counters, mirrored into the JSON report and
/// the serve tier's `Stats` reply under the same three keys.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerSummary {
    /// Constant occurrences folded into literals.
    pub folded: usize,
    /// Dead rules plus dead attributes eliminated.
    pub eliminated: usize,
    /// Copy-chain hops collapsed to their source.
    pub collapsed: usize,
}

impl ProfileReport {
    /// The static half only: no evaluation is attempted.
    pub fn without_eval(name: &str, analysis: &Analysis) -> ProfileReport {
        ProfileReport {
            name: name.to_string(),
            grammar: analysis.profile(),
            tree_nodes: 0,
            eval: None,
            eval_error: None,
            retries: 0,
            resumed_from: None,
            engine_used: None,
            engine_fallback: None,
            optimizer: analysis.opt.as_ref().map(|r| OptimizerSummary {
                folded: r.folded_uses,
                eliminated: r.eliminated_rules + r.eliminated_attrs,
                collapsed: r.collapsed_copies,
            }),
        }
    }

    /// Collect the full report: profile the grammar statically, then
    /// synthesize a parse tree of roughly `budget` nodes and run the
    /// evaluator over it with profiling on (disk-backed, as in the
    /// paper, so the I/O columns reflect real file traffic).
    ///
    /// A grammar whose semantic functions reject the synthetic intrinsic
    /// values still yields a report — the failure is recorded in
    /// [`eval_error`](ProfileReport::eval_error) instead of aborting.
    pub fn collect(name: &str, analysis: &Analysis, funcs: &Funcs, budget: usize) -> ProfileReport {
        ProfileReport::collect_with(name, analysis, funcs, budget, &RecoveryOpts::default())
    }

    /// [`collect`](ProfileReport::collect) with recovery options: a retry
    /// policy for transient failures, optional pass-boundary
    /// checkpointing, and resuming from an earlier checkpoint directory.
    pub fn collect_with(
        name: &str,
        analysis: &Analysis,
        funcs: &Funcs,
        budget: usize,
        recovery: &RecoveryOpts,
    ) -> ProfileReport {
        let mut report = ProfileReport::without_eval(name, analysis);
        let tree = match synthesize_tree(&analysis.grammar, budget) {
            Some(t) => t,
            None => {
                report.eval_error =
                    Some("no finite derivation exists for the start symbol".to_string());
                return report;
            }
        };
        report.tree_nodes = tree.size();
        // The initial-file strategy must match the planned first
        // direction: a right-to-left first pass reads the bottom-up
        // (shift-reduce order) file backwards; a left-to-right first
        // pass reads the prefix-order file forwards.
        let strategy = match analysis.passes.direction(1) {
            Direction::RightToLeft => Strategy::BottomUp,
            Direction::LeftToRight => Strategy::Prefix,
        };
        let opts = EvalOptions {
            strategy,
            backing: recovery.backing,
            profile: true,
            retry: recovery.retry,
            ..EvalOptions::default()
        };
        let result = if recovery.engine != EngineKind::Interpreted {
            // Compiled engines: prepare (AOT lookup / JIT build) and run
            // through the degradation ladder. Checkpoint/resume and the
            // pass-level profile are interpreter-only instrumentation.
            let engine = shared_engine(recovery.engine);
            let prepared = engine.prepare(analysis);
            let outcome = engine.evaluate(&prepared, analysis, funcs, &tree, &opts);
            report.engine_used = Some(outcome.engine_used.as_str().to_string());
            report.engine_fallback = outcome.fallback.map(|r| r.to_string());
            outcome.result
        } else {
            report.engine_used = Some(EngineKind::Interpreted.as_str().to_string());
            match (&recovery.checkpoint_dir, recovery.resume) {
                (Some(dir), true) => Evaluation::resume(analysis, funcs, &opts, dir)
                    .or_else(|_| evaluate_resumable(analysis, funcs, &tree, &opts, dir)),
                (Some(dir), false) => evaluate_resumable(analysis, funcs, &tree, &opts, dir),
                (None, _) => evaluate(analysis, funcs, &tree, &opts),
            }
        };
        match result {
            Ok(eval) => {
                report.retries = eval.stats.retries;
                report.resumed_from = eval.stats.resumed_from;
                report.eval = eval.metrics;
            }
            Err(e) => report.eval_error = Some(e.to_string()),
        }
        report
    }

    /// The aligned-text rendering: the §IV statistics block followed by
    /// the per-pass traffic table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== profile: {} ===", self.name);
        let _ = writeln!(out, "{}", self.grammar);
        if let Some(o) = &self.optimizer {
            let _ = writeln!(
                out,
                "optimizer: {} constant use(s) folded, {} dead rule(s)/attr(s) \
                 eliminated, {} copy hop(s) collapsed",
                o.folded, o.eliminated, o.collapsed
            );
        }
        match (&self.eval, &self.eval_error) {
            (Some(m), _) => {
                let _ = writeln!(out);
                let _ = writeln!(
                    out,
                    "evaluation over a synthetic {}-node tree:",
                    self.tree_nodes
                );
                let _ = writeln!(
                    out,
                    "initial file (boundary 0): {} records, {} bytes",
                    m.initial_records, m.initial_bytes
                );
                let _ = writeln!(
                    out,
                    "{:<5} {:<9} {:>6} {:>10} {:>6} {:>10} {:>7} {:>7} {:>7}",
                    "pass",
                    "reads",
                    "rec-in",
                    "bytes-in",
                    "rec-out",
                    "bytes-out",
                    "attrs",
                    "funcs",
                    "rules"
                );
                for p in &m.passes {
                    let dir = match p.direction {
                        ReadDir::Forward => "forward",
                        ReadDir::Backward => "backward",
                    };
                    let _ = writeln!(
                        out,
                        "{:<5} {:<9} {:>6} {:>10} {:>6} {:>10} {:>7} {:>7} {:>7}",
                        p.pass,
                        dir,
                        p.records_read,
                        p.bytes_read,
                        p.records_written,
                        p.bytes_written,
                        p.attrs_evaluated,
                        p.funcs_invoked,
                        p.rules_evaluated
                    );
                }
                let _ = writeln!(
                    out,
                    "total: {} file bytes, {} attribute instances, {} function calls",
                    m.total_io_bytes(),
                    m.total_attrs_evaluated(),
                    m.total_funcs_invoked()
                );
                if self.retries > 0 {
                    let _ = writeln!(out, "recovery: {} pass retr(ies)", self.retries);
                }
                if let Some(b) = self.resumed_from {
                    let _ = writeln!(out, "recovery: resumed from checkpoint boundary {}", b);
                }
            }
            (None, Some(e)) => {
                let _ = writeln!(out);
                let _ = writeln!(out, "evaluation profile unavailable: {}", e);
            }
            (None, None) => {
                if let Some(engine) = &self.engine_used {
                    if engine != "interpreted" {
                        let _ = writeln!(out);
                        let _ = writeln!(
                            out,
                            "evaluation ran on the {} engine over a synthetic {}-node tree \
                             (pass-level I/O profile is interpreter-only)",
                            engine, self.tree_nodes
                        );
                    }
                }
            }
        }
        if let Some(engine) = &self.engine_used {
            let _ = writeln!(out, "engine: {}", engine);
        }
        if let Some(reason) = &self.engine_fallback {
            let _ = writeln!(out, "engine fallback: {}", reason);
        }
        out
    }

    /// The JSON rendering (a single object; stable key order).
    pub fn render_json(&self) -> String {
        let g = &self.grammar;
        let s = &g.stats;
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"name\":{}", json_str(&self.name));
        out.push_str(",\"grammar\":{");
        let _ = write!(
            out,
            "\"symbols\":{},\"terminals\":{},\"nonterminals\":{},\"limbs\":{}",
            s.symbols, s.terminals, s.nonterminals, s.limbs
        );
        let _ = write!(
            out,
            ",\"attributes\":{},\"synthesized\":{},\"inherited\":{},\"intrinsic\":{},\"limb_attrs\":{}",
            s.attributes, s.synthesized, s.inherited, s.intrinsic, s.limb_attrs
        );
        let _ = write!(
            out,
            ",\"productions\":{},\"occurrences\":{},\"semantic_functions\":{}",
            s.productions, s.occurrences, s.semantic_functions
        );
        let _ = write!(
            out,
            ",\"copy_rules\":{},\"implicit_copy_rules\":{},\"copy_fraction\":{}",
            s.copy_rules,
            s.implicit_copy_rules,
            json_f64(s.copy_fraction())
        );
        let _ = write!(out, ",\"passes\":{},\"directions\":[", s.passes);
        for (i, d) in g.directions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(match d {
                Direction::LeftToRight => "\"left-to-right\"",
                Direction::RightToLeft => "\"right-to-left\"",
            });
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"static_attrs\":{},\"eligible_attrs\":{},\"copy_rules_subsumed\":{},\"copy_rules_remaining\":{},\"save_restore_sites\":{},\"elimination_fraction\":{}",
            g.subsumption.static_attrs,
            g.subsumption.eligible_attrs,
            g.subsumption.subsumed_rules,
            g.copy_rules_after(),
            g.subsumption.save_restore_sites,
            json_f64(g.elimination_fraction())
        );
        out.push('}');
        let _ = write!(out, ",\"tree_nodes\":{}", self.tree_nodes);
        match &self.optimizer {
            Some(o) => {
                let _ = write!(
                    out,
                    ",\"optimizer\":{{\"folded\":{},\"eliminated\":{},\"collapsed\":{}}}",
                    o.folded, o.eliminated, o.collapsed
                );
            }
            None => out.push_str(",\"optimizer\":null"),
        }
        let _ = write!(out, ",\"recovery\":{{\"retries\":{}", self.retries);
        match self.resumed_from {
            Some(b) => {
                let _ = write!(out, ",\"resumed_from\":{}}}", b);
            }
            None => out.push_str(",\"resumed_from\":null}"),
        }
        match &self.eval {
            Some(m) => {
                let _ = write!(out, ",\"eval\":{}", metrics_json(m));
            }
            None => out.push_str(",\"eval\":null"),
        }
        match &self.eval_error {
            Some(e) => {
                let _ = write!(out, ",\"eval_error\":{}", json_str(e));
            }
            None => out.push_str(",\"eval_error\":null"),
        }
        match &self.engine_used {
            Some(e) => {
                let _ = write!(out, ",\"engine\":{}", json_str(e));
            }
            None => out.push_str(",\"engine\":null"),
        }
        match &self.engine_fallback {
            Some(r) => {
                let _ = write!(out, ",\"engine_fallback\":{}", json_str(r));
            }
            None => out.push_str(",\"engine_fallback\":null"),
        }
        out.push('}');
        out
    }
}

/// One process-wide engine per compiled kind, so repeated profile runs
/// (and `--batch` jobs) share the AOT registry probe and the
/// content-hash JIT build cache instead of re-compiling per report.
fn shared_engine(kind: EngineKind) -> &'static Engine {
    static AOT: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
    static JIT: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
    let cell = match kind {
        EngineKind::CompiledJit => &JIT,
        _ => &AOT,
    };
    cell.get_or_init(|| {
        Engine::new(EngineConfig {
            kind,
            ..EngineConfig::default()
        })
    })
}

/// Render an [`EvalMetrics`] profile as a JSON object — shared between
/// the `--profile=json` report and the benchmark snapshot writer, so
/// `BENCH_*.json` files carry the same per-pass I/O shape.
pub fn metrics_json(m: &EvalMetrics) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"initial_records\":{},\"initial_bytes\":{}",
        m.initial_records, m.initial_bytes
    );
    let _ = write!(
        out,
        ",\"total_io_bytes\":{},\"total_attrs_evaluated\":{},\"total_funcs_invoked\":{},\"lock_acquisitions\":{}",
        m.total_io_bytes(),
        m.total_attrs_evaluated(),
        m.total_funcs_invoked(),
        m.lock_acquisitions
    );
    out.push_str(",\"passes\":[");
    for (i, p) in m.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pass\":{},\"direction\":\"{}\",\"input_boundary\":{},\"output_boundary\":{},\"records_read\":{},\"bytes_read\":{},\"records_written\":{},\"bytes_written\":{},\"attrs_evaluated\":{},\"funcs_invoked\":{},\"rules_evaluated\":{}}}",
            p.pass,
            match p.direction {
                ReadDir::Forward => "forward",
                ReadDir::Backward => "backward",
            },
            p.input_boundary,
            p.output_boundary,
            p.records_read,
            p.bytes_read,
            p.records_written,
            p.bytes_written,
            p.attrs_evaluated,
            p.funcs_invoked,
            p.rules_evaluated
        );
    }
    out.push_str("]}");
    out
}

/// A synthetic intrinsic value of the declared (uninterpreted) type.
/// Arithmetic-looking types get small integers so `+`/`*` rules work;
/// everything else falls back to a value its name suggests.
fn default_value(type_name: &str) -> Value {
    match type_name {
        "bool" | "boolean" => Value::Bool(false),
        "string" | "str" => Value::str("v"),
        "set" | "setof" => Value::empty_set(),
        "list" => Value::nil(),
        "map" | "pf" => Value::empty_map(),
        _ => Value::Int(1),
    }
}

/// Grow a parse tree of roughly `budget` nodes from the grammar alone.
///
/// A fixpoint over productions finds the cheapest finite derivation of
/// every nonterminal (`None` if the start symbol has no finite
/// derivation — the report then skips the dynamic half). Expansion
/// prefers the *most expensive* viable production while the node budget
/// lasts, so recursive grammars yield deep trees with real inter-pass
/// traffic instead of the one-production minimum; once the budget runs
/// out every choice falls back to the cheapest production. Terminal
/// leaves carry default intrinsic values chosen by declared type.
pub fn synthesize_tree(g: &Grammar, budget: usize) -> Option<PTree> {
    let nsym = g.symbols().len();
    // min_cost[s] = nodes in the cheapest subtree rooted at s.
    let mut min_cost: Vec<Option<usize>> = (0..nsym)
        .map(|i| match g.symbols()[i].kind {
            SymbolKind::Terminal => Some(1),
            _ => None,
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (pi, p) in g.productions().iter().enumerate() {
            let _ = pi;
            let cost = p
                .rhs
                .iter()
                .try_fold(1usize, |acc, s| min_cost[s.0 as usize].map(|c| acc + c));
            if let Some(c) = cost {
                let slot = &mut min_cost[p.lhs.0 as usize];
                if slot.map(|old| c < old).unwrap_or(true) {
                    *slot = Some(c);
                    changed = true;
                }
            }
        }
    }
    min_cost[g.start().0 as usize]?;

    let mut remaining = budget.max(min_cost[g.start().0 as usize].unwrap());
    Some(build(g, g.start(), &min_cost, &mut remaining))
}

/// Expand `sym`, spending from `remaining`.
fn build(g: &Grammar, sym: SymbolId, min_cost: &[Option<usize>], remaining: &mut usize) -> PTree {
    if g.symbol(sym).kind == SymbolKind::Terminal {
        *remaining = remaining.saturating_sub(1);
        let intrinsics = g
            .symbol(sym)
            .attrs
            .iter()
            .filter(|&&a| g.attr(a).class == AttrClass::Intrinsic)
            .map(|&a| (a, default_value(g.resolve(g.attr(a).type_name))))
            .collect();
        return PTree::leaf(sym, intrinsics);
    }

    // Viable productions for this nonterminal, with their minimum cost.
    let mut viable: Vec<(ProdId, usize)> = g
        .productions()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.lhs == sym)
        .filter_map(|(i, p)| {
            p.rhs
                .iter()
                .try_fold(1usize, |acc, s| min_cost[s.0 as usize].map(|c| acc + c))
                .map(|c| (ProdId(i as u32), c))
        })
        .collect();
    viable.sort_by_key(|&(_, c)| c);
    let cheapest = viable[0];
    // Prefer the most expensive production the budget still covers:
    // that is what makes recursive grammars recurse.
    let (prod, _) = viable
        .iter()
        .rev()
        .find(|&&(_, c)| c <= *remaining)
        .copied()
        .unwrap_or(cheapest);

    *remaining = remaining.saturating_sub(1);
    let rhs = g.production(prod).rhs.clone();
    // Reserve the minimum for the siblings to the right so an early
    // child cannot starve them below their cheapest derivation.
    let mut children = Vec::with_capacity(rhs.len());
    for (i, &child) in rhs.iter().enumerate() {
        let reserve: usize = rhs[i + 1..]
            .iter()
            .map(|s| min_cost[s.0 as usize].unwrap_or(0))
            .sum();
        let mut child_budget = remaining.saturating_sub(reserve);
        let before = child_budget;
        let t = build(g, child, min_cost, &mut child_budget);
        *remaining = remaining.saturating_sub(before - child_budget);
        children.push(t);
    }
    PTree::node(prod, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, DriverOptions};

    const TINY: &str = r#"
grammar Tiny ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
prod s0 = x :
  s0.V = x.OBJ ;
end
end
"#;

    #[test]
    fn synthesized_tree_respects_budget_and_grows() {
        let out = run(TINY, &DriverOptions::default()).unwrap();
        let g = &out.analysis.grammar;
        let small = synthesize_tree(g, 1).unwrap();
        // Minimum derivation: s -> x, two nodes.
        assert_eq!(small.size(), 2);
        let big = synthesize_tree(g, 40).unwrap();
        assert!(big.size() > 20, "budget 40 gave {} nodes", big.size());
        assert!(big.size() <= 41);
    }

    #[test]
    fn collect_produces_metrics_for_a_working_grammar() {
        let out = run(TINY, &DriverOptions::default()).unwrap();
        let r = ProfileReport::collect("tiny", &out.analysis, &Funcs::standard(), 30);
        assert!(r.eval_error.is_none(), "eval failed: {:?}", r.eval_error);
        let m = r.eval.as_ref().unwrap();
        assert_eq!(m.passes.len(), out.analysis.passes.num_passes());
        assert!(m.initial_records > 0);
        assert!(m.passes[0].records_read > 0);
        assert_eq!(m.passes[0].records_read, m.initial_records);
        let text = r.render_text();
        assert!(text.contains("pass"), "{}", text);
        assert!(text.contains("copy-rules subsumed"), "{}", text);
    }

    #[test]
    fn json_rendering_is_balanced_and_escaped() {
        let out = run(TINY, &DriverOptions::default()).unwrap();
        let mut r = ProfileReport::collect("ti\"ny\n", &out.analysis, &Funcs::standard(), 30);
        let json = r.render_json();
        assert!(json.contains("\"ti\\\"ny\\n\""), "{}", json);
        assert_balanced(&json);
        // And the no-eval shape.
        r.eval = None;
        r.eval_error = Some("boom".to_string());
        let json = r.render_json();
        assert!(json.contains("\"eval\":null"), "{}", json);
        assert!(json.contains("\"eval_error\":\"boom\""), "{}", json);
        assert_balanced(&json);
    }

    /// Cheap structural check: braces/brackets balance outside strings.
    fn assert_balanced(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced: {}", json);
        }
        assert_eq!(depth, 0, "unbalanced: {}", json);
        assert!(!in_str, "unterminated string: {}", json);
    }
}
