//! The overlay driver (§V).
//!
//! "LINGUIST-86 is an overlayed, pass-structured program consisting of
//! seven overlays and six passes":
//!
//! 1. scan and parse the input (build the name table, emit the
//!    right-parse, collect syntactic errors);
//! 2. (and 3.) semantic analysis: build the dictionary of symbols,
//!    attributes and semantic functions; insert implicit copy-rules;
//!    check completeness;
//! 4. analyze attribute dependencies for alternating-pass evaluability
//!    (plus non-circularity, lifetimes, and static subsumption);
//! 5. collect the sequence of semantic messages;
//! 6. create the listing file;
//! 7. generate one pass of the output evaluator — "rerun once for each
//!    pass of the output evaluator".
//!
//! Each overlay is timed individually so the §V timing table (E10) can be
//! regenerated.

use crate::lang::{parse, SyntaxError};
use crate::listing::render_listing;
use crate::lower::{lower_with_spans, LowerError};
use linguist_ag::analysis::{Analysis, AnalysisError, Config};
use linguist_ag::check::check_completeness;
use linguist_ag::circularity::check_noncircular;
use linguist_ag::implicit::insert_implicit_copies;
use linguist_ag::lifetime::Lifetimes;
use linguist_ag::lint::{run_lints, LintConfig, SpanMap};
use linguist_ag::passes::assign_passes;
use linguist_ag::plan::build_plans;
use linguist_ag::stats::GrammarStats;
use linguist_ag::subsumption::Subsumption;
use linguist_codegen::{GeneratedEvaluator, GeneratedPass, Target};
pub use linguist_engine::EngineKind;
use linguist_support::diag::Diagnostics;
use linguist_support::pos::Span;
use std::fmt;
use std::time::{Duration, Instant};

/// Per-overlay wall-clock times, matching the §V table rows.
#[derive(Clone, Debug, Default)]
pub struct OverlayTimings {
    /// Overlay 1: scanner + parser.
    pub parser: Duration,
    /// Overlay 2: first semantic-analysis pass (dictionary building).
    pub semantic1: Duration,
    /// Overlay 3: second semantic-analysis pass (implicit copies,
    /// completeness).
    pub semantic2: Duration,
    /// Overlay 4: evaluability test (circularity, passes, lifetimes,
    /// subsumption).
    pub evaluability: Duration,
    /// Overlay 5: semantic-message collection.
    pub messages: Duration,
    /// Overlay 6: listing generation.
    pub listing: Duration,
    /// Overlay 7, run once per output pass: evaluator generation.
    pub generation: Vec<Duration>,
}

impl OverlayTimings {
    /// Total time, the paper's TOTAL row.
    pub fn total(&self) -> Duration {
        self.parser
            + self.semantic1
            + self.semantic2
            + self.evaluability
            + self.messages
            + self.listing
            + self.generation.iter().sum::<Duration>()
    }

    /// Total excluding generation — the paper excludes the
    /// production-procedure generation time from its lines-per-minute
    /// figure "because it will depend directly on the number of passes".
    pub fn total_excluding_generation(&self) -> Duration {
        self.parser
            + self.semantic1
            + self.semantic2
            + self.evaluability
            + self.messages
            + self.listing
    }
}

impl fmt::Display for OverlayTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "          parser overlay - {:?}", self.parser)?;
        writeln!(f, " first attrib eval overlay - {:?}", self.semantic1)?;
        writeln!(f, "second attrib eval overlay - {:?}", self.semantic2)?;
        writeln!(f, " evaluability test overlay - {:?}", self.evaluability)?;
        writeln!(f, "  message collection overlay - {:?}", self.messages)?;
        writeln!(f, "listing generation overlay - {:?}", self.listing)?;
        for (i, g) in self.generation.iter().enumerate() {
            writeln!(f, "  evaluator gen (pass {}) - {:?}", i + 1, g)?;
        }
        write!(f, "                     TOTAL - {:?}", self.total())
    }
}

/// Options for a driver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverOptions {
    /// Analysis configuration (first direction, subsumption settings…).
    pub config: Config,
    /// Code-generation target.
    pub target: Option<TargetOpt>,
    /// Which execution engine downstream evaluation should use. The
    /// overlays themselves never evaluate, so this field only selects
    /// behavior for the layers that do: the `--profile` report and the
    /// serve tier read it off the options the CLI threaded through.
    pub engine: EngineKind,
}

/// Wrapper so [`DriverOptions`] can derive `Default` (Pascal by default).
#[derive(Clone, Copy, Debug)]
pub enum TargetOpt {
    /// Pascal-like output.
    Pascal,
    /// Rust-like output.
    Rust,
}

/// Everything a successful run produces.
#[derive(Debug)]
pub struct DriverOutput {
    /// The analyzed grammar.
    pub analysis: Analysis,
    /// The overlay-6 listing file.
    pub listing: String,
    /// The overlay-7 generated evaluator.
    pub generated: GeneratedEvaluator,
    /// Per-overlay times.
    pub timings: OverlayTimings,
    /// The §IV statistics row.
    pub stats: GrammarStats,
    /// Source lines processed (for lines-per-minute).
    pub source_lines: usize,
}

impl DriverOutput {
    /// Lines per minute excluding generation time, the paper's throughput
    /// metric.
    pub fn lines_per_minute(&self) -> f64 {
        let secs = self.timings.total_excluding_generation().as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.source_lines as f64 * 60.0 / secs
        }
    }
}

/// A driver failure, tagged with the overlay that detected it.
#[derive(Debug)]
pub enum DriverError {
    /// Overlay 1 rejected the input.
    Syntax(SyntaxError),
    /// Overlays 2–3 rejected the input.
    Lower(Vec<LowerError>),
    /// Overlays 3–4 rejected the grammar.
    Analysis(AnalysisError),
    /// The pipeline panicked mid-overlay; caught by the batch
    /// supervisor so one poisoned source cannot kill its siblings.
    Panicked(String),
}

impl DriverError {
    /// Stable machine-readable name for the failing stage. Service
    /// layers attach this to typed error replies so clients can tell a
    /// grammar they must fix (`syntax`/`lower`/`analysis`) from a
    /// toolchain defect (`panicked`) without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            DriverError::Syntax(_) => "syntax",
            DriverError::Lower(_) => "lower",
            DriverError::Analysis(_) => "analysis",
            DriverError::Panicked(_) => "panicked",
        }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Syntax(e) => write!(f, "{}", e),
            DriverError::Lower(errs) => {
                writeln!(f, "{} semantic error(s):", errs.len())?;
                for e in errs {
                    writeln!(f, "  {}", e)?;
                }
                Ok(())
            }
            DriverError::Analysis(e) => write!(f, "{}", e),
            DriverError::Panicked(msg) => write!(f, "pipeline panicked: {}", msg),
        }
    }
}

impl std::error::Error for DriverError {}

/// Run overlays 1–4 only: scan/parse, lower, implicit copies +
/// completeness, evaluability. This is the *analysis* half of [`run`] —
/// everything needed to evaluate APTs against the grammar, with none of
/// the listing/codegen products. `linguist-serve` compiles grammars
/// through this entry point once per session-cache miss; anything else
/// that already holds source text in memory can call it without paying
/// for overlays 5–7.
///
/// # Errors
///
/// See [`DriverError`]; the failing overlay aborts the run.
pub fn analyze(source: &str, config: &Config) -> Result<Analysis, DriverError> {
    analyze_timed(source, config).map(|(analysis, _, _)| analysis)
}

/// [`analyze`] plus the source-span tables the lint layer needs to turn
/// dense ids back into source positions. `linguist-serve` compiles
/// through this entry point so a cached grammar can answer `check`
/// requests without re-running any overlay.
///
/// # Errors
///
/// See [`DriverError`].
pub fn analyze_with_spans(
    source: &str,
    config: &Config,
) -> Result<(Analysis, SpanMap), DriverError> {
    analyze_timed(source, config).map(|(analysis, spans, _)| (analysis, spans))
}

/// [`analyze`] plus spans plus per-overlay wall-clock times (overlay 5–7
/// fields are left zeroed for [`run`] to fill).
fn analyze_timed(
    source: &str,
    config: &Config,
) -> Result<(Analysis, SpanMap, OverlayTimings), DriverError> {
    let mut timings = OverlayTimings::default();

    // Overlay 1: scan + parse.
    let t = Instant::now();
    let file = match parse(source) {
        Ok(f) => f,
        Err(e) => {
            return Err(DriverError::Syntax(e));
        }
    };
    timings.parser = t.elapsed();

    // Overlay 2: dictionary building (lowering).
    let t = Instant::now();
    let (mut grammar, mut spans) = lower_with_spans(&file).map_err(DriverError::Lower)?;
    timings.semantic1 = t.elapsed();

    // Overlay 3: implicit copy-rules + completeness.
    let t = Instant::now();
    let implicit = if config.skip_implicit {
        linguist_ag::implicit::ImplicitStats::default()
    } else {
        insert_implicit_copies(&mut grammar)
    };
    check_completeness(&grammar).map_err(|e| DriverError::Analysis(AnalysisError::Check(e)))?;
    timings.semantic2 = t.elapsed();

    // Overlay 4: evaluability.
    let t = Instant::now();
    let mut io = check_noncircular(&grammar)
        .map_err(|e| DriverError::Analysis(AnalysisError::Circular(e)))?;
    // Grammar optimizer: rewrite before any scheduling so pass
    // assignment, lifetimes, and subsumption all see the smaller rule
    // set. Runs only on grammars that already passed completeness and
    // circularity; its transforms only remove dependency edges.
    let opt = if config.optimize {
        let report = linguist_ag::dataflow::optimize(&mut grammar);
        spans.remap_rules(&report.rule_remap);
        io = check_noncircular(&grammar)
            .map_err(|e| DriverError::Analysis(AnalysisError::Circular(e)))?;
        Some(report)
    } else {
        None
    };
    let passes = assign_passes(&grammar, &config.pass)
        .map_err(|e| DriverError::Analysis(AnalysisError::Pass(e)))?;
    let mut lifetimes = Lifetimes::compute(&grammar, &passes);
    if config.optimize {
        lifetimes.enable_record_elision();
    }
    let subsumption = if config.disable_subsumption {
        Subsumption::disabled(&grammar)
    } else {
        Subsumption::compute(&grammar, config.group_mode, config.costs, Some(&passes))
    };
    let plans = build_plans(&grammar, &passes)
        .map_err(|e| DriverError::Analysis(AnalysisError::Plan(e)))?;
    let analysis = Analysis {
        grammar,
        implicit,
        io,
        passes,
        lifetimes,
        subsumption,
        plans,
        opt,
    };
    timings.evaluability = t.elapsed();
    Ok((analysis, spans, timings))
}

/// Run the full seven-overlay pipeline on LINGUIST source text.
///
/// # Errors
///
/// See [`DriverError`]; the failing overlay aborts the run, as in the
/// original (a grammar with syntax errors never reaches evaluator
/// generation).
pub fn run(source: &str, opts: &DriverOptions) -> Result<DriverOutput, DriverError> {
    let (analysis, spans, mut timings) = analyze_timed(source, &opts.config)?;
    let mut diags = Diagnostics::new();

    // Overlay 5: message collection — the coded lint findings plus the
    // classic summary notes, interleaved with source lines by overlay 6.
    let t = Instant::now();
    let lint_cfg = LintConfig {
        explain_residual_copies: !opts.config.disable_subsumption,
        ..LintConfig::default()
    };
    for finding in run_lints(&analysis, &spans, &lint_cfg) {
        diags.push(finding.to_diagnostic());
    }
    if analysis.implicit.total() > 0 {
        diags.note(
            Span::default(),
            5,
            format!("{} implicit copy-rules inserted", analysis.implicit.total()),
        );
    }
    let sub_stats = analysis.subsumption.stats(&analysis.grammar);
    if sub_stats.subsumed_rules > 0 {
        diags.note(
            Span::default(),
            5,
            format!(
                "static subsumption eliminated {} of {} copy-rules",
                sub_stats.subsumed_rules, sub_stats.copy_rules
            ),
        );
    }
    timings.messages = t.elapsed();

    // Overlay 6: listing generation.
    let t = Instant::now();
    let listing = render_listing(source, &analysis, &diags);
    timings.listing = t.elapsed();

    // Overlay 7: evaluator generation, rerun once per pass.
    let target = match opts.target {
        Some(TargetOpt::Rust) => Target::Rust,
        _ => Target::Pascal,
    };
    let mut passes_src: Vec<GeneratedPass> = Vec::new();
    for k in 1..=analysis.passes.num_passes() as u16 {
        let t = Instant::now();
        passes_src.push(linguist_codegen::generate_pass(&analysis, k, target));
        timings.generation.push(t.elapsed());
    }
    let generated = GeneratedEvaluator {
        passes: passes_src,
        globals_decl: linguist_codegen::generate_globals(&analysis, target),
        target,
    };

    let stats = analysis.stats();
    Ok(DriverOutput {
        analysis,
        listing,
        generated,
        timings,
        stats,
        source_lines: source.lines().count(),
    })
}

/// Aggregate measurements of a [`run_batch`] call.
#[derive(Clone, Debug, Default)]
pub struct BatchRunStats {
    /// Grammars submitted.
    pub jobs: usize,
    /// Grammars rejected by some overlay.
    pub failed: usize,
    /// Of the failures, how many were caught panics rather than typed
    /// overlay diagnostics.
    pub panicked: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Total source lines across successful runs.
    pub source_lines: usize,
}

impl BatchRunStats {
    /// Grammars processed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.jobs as f64 / self.wall.as_secs_f64()
    }
}

/// Run the seven-overlay pipeline over many independent grammar sources
/// in parallel on `workers` threads (clamped to at least 1).
///
/// Each source gets the full [`run`] treatment with its own overlay
/// timings; results come back in input order. A source that fails keeps
/// its [`DriverError`] in its slot without disturbing the others — batch
/// compilation of a broken file set still reports every diagnostic.
pub fn run_batch(
    sources: &[&str],
    opts: &DriverOptions,
    workers: usize,
) -> (Vec<Result<DriverOutput, DriverError>>, BatchRunStats) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let started = Instant::now();
    let n = sources.len();
    let pool = workers.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<DriverOutput, DriverError>)>();

    let results = std::thread::scope(|scope| {
        for _ in 0..pool {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Panic isolation: a source that crashes an overlay
                // reports a typed `Panicked` error instead of unwinding
                // the worker and starving every slot it would have fed.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run(sources[i], opts)
                }))
                .unwrap_or_else(|payload| {
                    Err(DriverError::Panicked(linguist_eval::batch::panic_message(
                        payload,
                    )))
                });
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<DriverOutput, DriverError>>> =
            (0..n).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(DriverError::Panicked(
                        "worker died without reporting a result".to_owned(),
                    ))
                })
            })
            .collect::<Vec<_>>()
    });

    let mut stats = BatchRunStats {
        jobs: n,
        workers: pool,
        wall: started.elapsed(),
        ..BatchRunStats::default()
    };
    for r in &results {
        match r {
            Ok(out) => stats.source_lines += out.source_lines,
            Err(e) => {
                stats.failed += 1;
                if matches!(e, DriverError::Panicked(_)) {
                    stats.panicked += 1;
                }
            }
        }
    }
    (results, stats)
}
