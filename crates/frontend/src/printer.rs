//! `Grammar → .lg` pretty-printer.
//!
//! The inverse of [`lower`](crate::lower::lower): renders a structural
//! [`Grammar`] back into the concrete LINGUIST syntax of [`crate::lang`],
//! such that `lower(parse(print(g)))` is structurally identical to `g`
//! (same symbols, attributes, productions, and explicit rules, in the
//! same order, with the same names). This is what lets randomly
//! *generated* grammars round-trip through the real text frontend —
//! scanner, LALR parser, occurrence-suffix resolution — instead of
//! entering the pipeline through the builder API only.
//!
//! Printing rules that keep the round trip exact:
//!
//! * Only [`RuleOrigin::Explicit`] rules are printed. Implicit copy
//!   rules are *derived* (inserted by the analysis phase); printing them
//!   would turn them explicit on the way back in.
//! * Occurrence names follow the Figure-1 convention exactly as
//!   [`lower`](crate::lower::lower) verifies it: a symbol occurring more
//!   than once in a production (LHS counted first) gets its ordinal
//!   suffix on every occurrence; a unique symbol is written bare.
//! * Every binary operation is printed fully parenthesized. The parse
//!   tree drops parentheses (there is no paren node in the AST), so
//!   over-parenthesizing is invisible to the round trip while sparing
//!   the printer any precedence bookkeeping.
//! * Limb-attribute occurrences are written bare (`TMP`), matching the
//!   only concrete syntax that resolves to [`OccPos::Limb`].
//!
//! One caveat: the concrete syntax has no negative integer literals
//! (`INT` is `[0-9]+` and there is no unary minus), so a negative
//! [`Expr::Int`] is printed as `(0 - n)`, which reparses as a
//! subtraction. No frontend-lowered grammar can contain a negative
//! literal, so this only affects builder-constructed grammars, and only
//! changes the expression's spelling, not its value.

use linguist_ag::expr::Expr;
use linguist_ag::grammar::{AttrClass, Grammar, RuleOrigin, SymbolKind};
use linguist_ag::ids::{AttrOcc, OccPos, ProdId, SymbolId};
use std::fmt::Write;

/// Render `g` as LINGUIST concrete syntax under the grammar name `name`
/// (the name is part of the syntax but not of the structural grammar).
pub fn print_grammar(g: &Grammar, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "grammar {} ;", name);

    for (kind, keyword) in [
        (SymbolKind::Terminal, "terminals"),
        (SymbolKind::Nonterminal, "nonterminals"),
        (SymbolKind::Limb, "limbs"),
    ] {
        let syms: Vec<(usize, _)> = g
            .symbols()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .collect();
        if syms.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{}", keyword);
        for (i, sym) in syms {
            let sname = g.symbol_name(SymbolId(i as u32));
            if sym.attrs.is_empty() {
                let _ = writeln!(out, "  {} ;", sname);
                continue;
            }
            let decls: Vec<String> = sym
                .attrs
                .iter()
                .map(|&a| {
                    let attr = g.attr(a);
                    let class = match attr.class {
                        AttrClass::Synthesized => "syn",
                        AttrClass::Inherited => "inh",
                        AttrClass::Intrinsic => "intrinsic",
                        AttrClass::Limb => "local",
                    };
                    format!("{} {} {}", class, g.attr_name(a), g.resolve(attr.type_name))
                })
                .collect();
            let _ = writeln!(out, "  {} : {} ;", sname, decls.join(", "));
        }
    }

    let _ = writeln!(out, "start {} ;", g.symbol_name(g.start()));
    let _ = writeln!(out, "productions");
    for (pi, p) in g.productions().iter().enumerate() {
        let prod = ProdId(pi as u32);
        let occ = occurrence_names(g, prod);
        let rhs: Vec<String> = (0..p.rhs.len())
            .map(|i| occ.name(OccPos::Rhs(i as u16)))
            .collect();
        // An empty RHS still needs its `=`: `prod s = : ... end`.
        let head = if rhs.is_empty() {
            format!("{} =", occ.name(OccPos::Lhs))
        } else {
            format!("{} = {}", occ.name(OccPos::Lhs), rhs.join(" "))
        };
        match p.limb {
            Some(l) => {
                let _ = writeln!(out, "prod {} -> {} :", head, g.symbol_name(l));
            }
            None => {
                let _ = writeln!(out, "prod {} :", head);
            }
        }
        for &r in &p.rules {
            let rule = g.rule(r);
            if rule.origin != RuleOrigin::Explicit {
                continue;
            }
            let targets: Vec<String> = rule.targets.iter().map(|t| occ.target(g, *t)).collect();
            let _ = writeln!(
                out,
                "  {} = {} ;",
                targets.join(" & "),
                print_expr(g, &occ, &rule.expr)
            );
        }
        let _ = writeln!(out, "end");
    }
    let _ = writeln!(out, "end");
    out
}

/// The occurrence-name table of one production: which concrete spelling
/// (`expr`, `expr0`, `expr1`, …) names each position.
struct OccNames {
    lhs: String,
    rhs: Vec<String>,
}

impl OccNames {
    fn name(&self, pos: OccPos) -> String {
        match pos {
            OccPos::Lhs => self.lhs.clone(),
            OccPos::Rhs(i) => self.rhs[i as usize].clone(),
            OccPos::Limb => unreachable!("limb occurrences are spelled by attribute name"),
        }
    }

    /// A rule target: `occ.ATTR` for LHS/RHS positions, the bare
    /// attribute name for limb attributes.
    fn target(&self, g: &Grammar, t: AttrOcc) -> String {
        match t.pos {
            OccPos::Limb => g.attr_name(t.attr).to_string(),
            pos => format!("{}.{}", self.name(pos), g.attr_name(t.attr)),
        }
    }
}

/// Compute the Figure-1 occurrence spellings for `prod`: ordinals count
/// the LHS first, then RHS occurrences left to right; a symbol occurring
/// once is spelled bare.
fn occurrence_names(g: &Grammar, prod: ProdId) -> OccNames {
    let p = g.production(prod);
    let count = |s: SymbolId| -> usize {
        usize::from(p.lhs == s) + p.rhs.iter().filter(|&&r| r == s).count()
    };
    let spell = |s: SymbolId, ord: usize| -> String {
        if count(s) > 1 {
            format!("{}{}", g.symbol_name(s), ord)
        } else {
            g.symbol_name(s).to_string()
        }
    };
    let lhs = spell(p.lhs, 0);
    let mut seen: std::collections::HashMap<SymbolId, usize> = std::collections::HashMap::new();
    let rhs = p
        .rhs
        .iter()
        .map(|&s| {
            let base = usize::from(p.lhs == s);
            let k = seen.entry(s).or_insert(0);
            let ord = base + *k;
            *k += 1;
            spell(s, ord)
        })
        .collect();
    OccNames { lhs, rhs }
}

/// Render one semantic-function expression. Binops are fully
/// parenthesized; `if` prints its comma-separated arm lists.
fn print_expr(g: &Grammar, occ: &OccNames, e: &Expr) -> String {
    match e {
        Expr::Occ(o) => occ.target(g, *o),
        Expr::Int(i) if *i >= 0 => i.to_string(),
        Expr::Int(i) => format!("(0 - {})", (*i as i128).unsigned_abs()),
        Expr::Bool(true) => "true".to_string(),
        Expr::Bool(false) => "false".to_string(),
        Expr::Str(s) => {
            debug_assert!(
                !s.contains('\'') && !s.contains('\n'),
                "string literal `{}` cannot be spelled in .lg syntax",
                s
            );
            format!("'{}'", s)
        }
        Expr::Const(n) => g.resolve(*n).to_string(),
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args.iter().map(|a| print_expr(g, occ, a)).collect();
            format!("{}({})", g.resolve(*func), rendered.join(", "))
        }
        Expr::Binop { op, lhs, rhs } => format!(
            "({} {} {})",
            print_expr(g, occ, lhs),
            op,
            print_expr(g, occ, rhs)
        ),
        Expr::If {
            branches,
            otherwise,
        } => {
            let arm = |xs: &[Expr]| -> String {
                xs.iter()
                    .map(|x| print_expr(g, occ, x))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut s = String::new();
            for (i, (cond, body)) in branches.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "elsif" };
                let _ = write!(s, "{} {} then {} ", kw, print_expr(g, occ, cond), arm(body));
            }
            let _ = write!(s, "else {} endif", arm(otherwise));
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;
    use crate::lower::lower;

    const CALC: &str = r#"
grammar Calc ;
terminals
  NUMBER : intrinsic VAL int ;
  PLUS ;
nonterminals
  expr : syn V int ;
  term : syn V int ;
limbs
  AddLimb : local TMP int ;
start expr ;
productions
prod expr0 = expr1 PLUS term -> AddLimb :
  TMP = term.V ;
  expr0.V = expr1.V + TMP ;
end
prod expr0 = term :
  expr0.V = term.V ;
end
prod term = NUMBER :
  term.V = NUMBER.VAL ;
end
end
"#;

    #[test]
    fn printed_calc_reaches_a_fixed_point() {
        let g1 = lower(&parse(CALC).unwrap()).unwrap();
        let p1 = print_grammar(&g1, "Calc");
        let g2 = lower(&parse(&p1).unwrap()).unwrap_or_else(|e| {
            panic!("printed grammar must reparse: {:?}\n{}", e, p1);
        });
        let p2 = print_grammar(&g2, "Calc");
        assert_eq!(p1, p2, "print → parse → lower → print is a fixed point");
        assert_eq!(g1.rules().len(), g2.rules().len());
        assert_eq!(g1.symbols().len(), g2.symbols().len());
    }

    #[test]
    fn suffixes_appear_exactly_when_a_symbol_repeats() {
        let g = lower(&parse(CALC).unwrap()).unwrap();
        let p = print_grammar(&g, "Calc");
        assert!(p.contains("prod expr0 = expr1 PLUS term -> AddLimb :"));
        assert!(p.contains("prod term = NUMBER :"));
    }

    #[test]
    fn empty_rhs_and_multi_target_print() {
        let src = r#"
grammar T ;
nonterminals s : syn A int, syn B int ;
start s ;
productions
prod s = :
  s.A & s.B = if true then 1, 2 else 3, 4 endif ;
end
end
"#;
        let g1 = lower(&parse(src).unwrap()).unwrap();
        let p1 = print_grammar(&g1, "T");
        assert!(p1.contains("prod s = :"), "{}", p1);
        assert!(p1.contains("s.A & s.B = if true then 1, 2 else 3, 4 endif ;"));
        let g2 = lower(&parse(&p1).unwrap()).unwrap();
        assert_eq!(p1, print_grammar(&g2, "T"));
    }

    #[test]
    fn negative_literal_prints_as_subtraction() {
        use linguist_ag::grammar::AgBuilder;
        use linguist_ag::ids::AttrOcc;
        let mut b = AgBuilder::new();
        let s = b.nonterminal("s");
        let v = b.synthesized(s, "V", "int");
        let p = b.production(s, vec![], None);
        b.rule(p, vec![AttrOcc::lhs(v)], Expr::Int(-7));
        b.start(s);
        let g = b.build().unwrap();
        let printed = print_grammar(&g, "Neg");
        assert!(printed.contains("(0 - 7)"), "{}", printed);
        // The respelled form still parses and evaluates to the same value.
        lower(&parse(&printed).unwrap()).unwrap();
    }
}
