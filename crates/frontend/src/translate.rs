//! Running generated translators on concrete input.
//!
//! §IV: "The input to LINGUIST-86 is also the input to our LALR
//! parse-table builder … we submit exactly the same input file to both."
//! [`UserParser`] is that shared view: it extracts the underlying
//! context-free grammar of an analyzed attribute grammar, builds LALR(1)
//! tables for it, and turns the parser's bottom-up event stream into the
//! evaluator's [`PTree`] — with the parser setting intrinsic attributes on
//! the leaves, just as the paper's parser "builds the table of all
//! identifiers encountered" and stamps name-table indices and source
//! locations into the APT.
//!
//! [`Translator`] bundles a scanner on top: scanner token kinds are
//! matched to terminal symbols *by name*, so one definition file's names
//! serve both tools.

use linguist_ag::analysis::Analysis;
use linguist_ag::grammar::{AttrClass, Grammar, SymbolKind};
use linguist_ag::ids::{AttrId, ProdId, SymbolId};
use linguist_eval::batch::{BatchEvaluator, BatchStats};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, EvalOptions, Evaluation};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use linguist_lalr::grammar::{GrammarBuilder, NonTermId, Sym, TermId};
use linguist_lalr::parser::{ParseEvent, Parser};
use linguist_lalr::table::{LalrTable, TableError};
use linguist_lexgen::Scanner;
use linguist_support::intern::NameTable;
use linguist_support::pos::Span;
use std::collections::HashMap;
use std::fmt;

/// Context handed to the intrinsic-attribute callback for each leaf.
#[derive(Debug)]
pub struct LeafCtx<'a> {
    /// The terminal symbol of the leaf.
    pub sym: SymbolId,
    /// The lexeme text.
    pub text: &'a str,
    /// Source span of the lexeme.
    pub span: Span,
    /// The run's identifier name table (intern lexemes here).
    pub names: &'a mut NameTable,
}

/// Computes a leaf's intrinsic attribute values. The default
/// ([`standard_intrinsics`]) understands the conventional attribute names
/// the paper mentions: a name-table index and a source location.
pub type IntrinsicFn<'g> = dyn Fn(&Grammar, &mut LeafCtx<'_>) -> Vec<(AttrId, Value)> + 'g;

/// The paper's convention: `LINE` gets the 1-based source line; any other
/// intrinsic gets the interned lexeme (its "name-table-index"). Integer
/// parsing is applied when the attribute's declared type is `int`.
pub fn standard_intrinsics(g: &Grammar, ctx: &mut LeafCtx<'_>) -> Vec<(AttrId, Value)> {
    let mut out = Vec::new();
    for &a in &g.symbol(ctx.sym).attrs {
        if g.attr(a).class != AttrClass::Intrinsic {
            continue;
        }
        let name = g.attr_name(a);
        let ty = g.resolve(g.attr(a).type_name);
        let v = if name.eq_ignore_ascii_case("line") {
            Value::Int(ctx.span.start.line as i64)
        } else if ty == "int" {
            ctx.text
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or_else(|_| Value::Sym(ctx.names.intern(ctx.text)))
        } else if ty == "string" {
            Value::str(ctx.text)
        } else {
            Value::Sym(ctx.names.intern(ctx.text))
        };
        out.push((a, v));
    }
    out
}

/// Errors from building or running a translator.
#[derive(Debug)]
pub enum TranslateError {
    /// The underlying CFG is not LALR(1).
    Table(TableError),
    /// Input failed to scan.
    Scan(linguist_lexgen::ScanError),
    /// A scanner token kind has no matching terminal symbol.
    UnboundToken {
        /// The token kind name.
        kind: String,
    },
    /// Input failed to parse.
    Parse(linguist_lalr::parser::ParseError),
    /// Evaluation failed.
    Eval(linguist_eval::machine::EvalError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Table(e) => write!(f, "{}", e),
            TranslateError::Scan(e) => write!(f, "{}", e),
            TranslateError::UnboundToken { kind } => write!(
                f,
                "scanner token `{}` does not name a terminal of the grammar",
                kind
            ),
            TranslateError::Parse(e) => write!(f, "{}", e),
            TranslateError::Eval(e) => write!(f, "{}", e),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<TableError> for TranslateError {
    fn from(e: TableError) -> TranslateError {
        TranslateError::Table(e)
    }
}
impl From<linguist_eval::machine::EvalError> for TranslateError {
    fn from(e: linguist_eval::machine::EvalError) -> TranslateError {
        TranslateError::Eval(e)
    }
}

/// LALR tables for the underlying CFG of an attribute grammar, plus the
/// id mappings needed to rebuild [`PTree`]s from parse events.
#[derive(Debug)]
pub struct UserParser {
    table: LalrTable,
    term_of_sym: HashMap<SymbolId, TermId>,
}

impl UserParser {
    /// Build LALR(1) tables from the grammar's phrase structure.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] with the full conflict report if the CFG is
    /// not LALR(1).
    pub fn build(g: &Grammar) -> Result<UserParser, TableError> {
        let mut b = GrammarBuilder::new();
        let mut term_of_sym = HashMap::new();
        let mut nt_of_sym: HashMap<SymbolId, NonTermId> = HashMap::new();
        for (si, sym) in g.symbols().iter().enumerate() {
            let sid = SymbolId(si as u32);
            match sym.kind {
                SymbolKind::Terminal => {
                    let t = b.terminal(g.symbol_name(sid));
                    term_of_sym.insert(sid, t);
                }
                SymbolKind::Nonterminal => {
                    let n = b.nonterminal(g.symbol_name(sid));
                    nt_of_sym.insert(sid, n);
                }
                SymbolKind::Limb => {}
            }
        }
        // Productions in the same order → identical dense ids.
        for p in g.productions() {
            let rhs: Vec<Sym> = p
                .rhs
                .iter()
                .map(|&s| match g.symbol(s).kind {
                    SymbolKind::Terminal => Sym::T(term_of_sym[&s]),
                    _ => Sym::N(nt_of_sym[&s]),
                })
                .collect();
            b.production(nt_of_sym[&p.lhs], rhs);
        }
        let cfg = b
            .start(nt_of_sym[&g.start()])
            .build()
            .expect("grammar is valid");
        let table = LalrTable::build(&cfg)?;
        Ok(UserParser { table, term_of_sym })
    }

    /// The LALR terminal for a grammar terminal.
    pub fn term_of(&self, sym: SymbolId) -> Option<TermId> {
        self.term_of_sym.get(&sym).copied()
    }

    /// Number of parser states (for table-size reporting).
    pub fn num_states(&self) -> usize {
        self.table.num_states()
    }

    /// Approximate table size in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.byte_size()
    }

    /// Parse a stream of `(terminal symbol, intrinsic values)` tokens into
    /// a [`PTree`] — "the parser ... emits tree nodes in bottom-up order".
    ///
    /// # Errors
    ///
    /// Returns the parser's error on invalid input.
    pub fn parse_tree<I>(&self, tokens: I) -> Result<PTree, linguist_lalr::parser::ParseError>
    where
        I: IntoIterator<Item = (SymbolId, Vec<(AttrId, Value)>)>,
    {
        let stream = tokens
            .into_iter()
            .map(|(sym, intrinsics)| (self.term_of_sym[&sym], (sym, intrinsics)));
        let parser = Parser::new(&self.table);
        let mut stack: Vec<PTree> = Vec::new();
        parser.parse_with(stream, |event| match event {
            ParseEvent::Shift {
                payload: (sym, intrinsics),
                ..
            } => stack.push(PTree::leaf(sym, intrinsics)),
            ParseEvent::Reduce {
                production, arity, ..
            } => {
                let children = stack.split_off(stack.len() - arity);
                stack.push(PTree::node(ProdId(production.0), children));
            }
        })?;
        Ok(stack.pop().expect("accepting parse leaves the root"))
    }
}

/// A complete translator: scanner + parser + analyzed attribute grammar.
pub struct Translator {
    /// The analyzed grammar.
    pub analysis: Analysis,
    parser: UserParser,
    scanner: Scanner,
    kind_to_sym: Vec<Option<SymbolId>>,
}

impl fmt::Debug for Translator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Translator")
            .field("states", &self.parser.num_states())
            .finish()
    }
}

impl Translator {
    /// Assemble a translator. Scanner token kinds are bound to terminals
    /// by name; kinds with no same-named terminal are rejected.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Table`] if the CFG is not LALR(1);
    /// [`TranslateError::UnboundToken`] for an unmatched token kind.
    pub fn new(analysis: Analysis, scanner: Scanner) -> Result<Translator, TranslateError> {
        let parser = UserParser::build(&analysis.grammar)?;
        let mut kind_to_sym = Vec::with_capacity(scanner.num_kinds());
        for k in 0..scanner.num_kinds() as u32 {
            let name = scanner.kind_name(k);
            match analysis.grammar.symbol_by_name(name) {
                Some(s) if analysis.grammar.symbol(s).kind == SymbolKind::Terminal => {
                    kind_to_sym.push(Some(s))
                }
                _ if name.starts_with("<skip") => kind_to_sym.push(None),
                _ => {
                    return Err(TranslateError::UnboundToken {
                        kind: name.to_owned(),
                    })
                }
            }
        }
        Ok(Translator {
            analysis,
            parser,
            scanner,
            kind_to_sym,
        })
    }

    /// Scan and parse `input` into an APT seed.
    ///
    /// # Errors
    ///
    /// Scanner and parser failures; see [`TranslateError`].
    pub fn parse_input(
        &self,
        input: &str,
        intrinsics: &IntrinsicFn<'_>,
        names: &mut NameTable,
    ) -> Result<PTree, TranslateError> {
        let tokens = self.scanner.scan(input).map_err(TranslateError::Scan)?;
        let g = &self.analysis.grammar;
        let mut stream = Vec::with_capacity(tokens.len());
        for t in tokens {
            let sym = self.kind_to_sym[t.kind as usize].expect("skip kinds never reach here");
            let mut ctx = LeafCtx {
                sym,
                text: t.text(input),
                span: t.span,
                names,
            };
            let vals = intrinsics(g, &mut ctx);
            stream.push((sym, vals));
        }
        self.parser
            .parse_tree(stream)
            .map_err(TranslateError::Parse)
    }

    /// Scan, parse, and evaluate `input` — the whole translator.
    ///
    /// # Errors
    ///
    /// See [`TranslateError`].
    pub fn translate(
        &self,
        input: &str,
        funcs: &Funcs,
        opts: &EvalOptions,
    ) -> Result<Evaluation, TranslateError> {
        let mut names = NameTable::new();
        let tree = self.parse_input(input, &standard_intrinsics, &mut names)?;
        Ok(evaluate(&self.analysis, funcs, &tree, opts)?)
    }

    /// Scan, parse, and evaluate many inputs, evaluating in parallel on
    /// `workers` threads.
    ///
    /// Parsing stays sequential (the scanner tables are cheap to walk and
    /// each input gets a fresh [`NameTable`]); the evaluation — where the
    /// passes, the semantic functions, and all the intermediate-file I/O
    /// happen — is fanned out through a
    /// [`BatchEvaluator`](linguist_eval::batch::BatchEvaluator). Inputs
    /// that fail to scan or parse report their error in their own result
    /// slot and never reach the pool.
    ///
    /// Results are in input order. The returned [`BatchStats`] counts
    /// only the jobs submitted to the evaluator (scan/parse failures are
    /// excluded from `jobs`).
    pub fn translate_batch(
        &self,
        inputs: &[&str],
        funcs: &Funcs,
        opts: &EvalOptions,
        workers: usize,
    ) -> (Vec<Result<Evaluation, TranslateError>>, BatchStats) {
        // Parse phase: collect trees, remembering which input each
        // surviving tree came from.
        let mut results: Vec<Option<Result<Evaluation, TranslateError>>> =
            (0..inputs.len()).map(|_| None).collect();
        let mut trees = Vec::new();
        let mut origins = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            let mut names = NameTable::new();
            match self.parse_input(input, &standard_intrinsics, &mut names) {
                Ok(tree) => {
                    trees.push(tree);
                    origins.push(i);
                }
                Err(e) => results[i] = Some(Err(e)),
            }
        }

        // Evaluation phase: the parallel part.
        let batch = BatchEvaluator::with_options(workers, opts.clone());
        let outcome = batch.run(&self.analysis, funcs, &trees);
        for (origin, result) in origins.into_iter().zip(outcome.results) {
            results[origin] = Some(result.map_err(TranslateError::Eval));
        }
        (
            results
                .into_iter()
                .map(|slot| slot.expect("every input resolved"))
                .collect(),
            outcome.stats,
        )
    }

    /// Parser-state count (reported by examples).
    pub fn parser_states(&self) -> usize {
        self.parser.num_states()
    }
}
