//! The `linguist` command: the translator-writing system as a CLI.
//!
//! ```text
//! linguist GRAMMAR.lg [options]
//!
//!   --listing            print the overlay-6 listing file
//!   --stats              print the §IV statistics block (default)
//!   --timings            print the per-overlay timing table
//!   --emit pascal|rust   print the generated evaluator source
//!   --first-pass rl|lr   bootstrap strategy (default rl, like the paper)
//!   --no-subsumption     disable static subsumption
//!   --coalesce           use the cross-name coalescing extension
//! ```
//!
//! Exit status: 0 on success, 1 on any syntax/semantic/analysis error
//! (reported the way the failing overlay saw it).

use linguist_ag::analysis::Config;
use linguist_ag::passes::{Direction, PassConfig};
use linguist_ag::subsumption::GroupMode;
use linguist_frontend::driver::{run, DriverOptions, TargetOpt};
use std::process::ExitCode;

struct Cli {
    path: String,
    listing: bool,
    stats: bool,
    timings: bool,
    emit: Option<TargetOpt>,
    first: Direction,
    no_subsumption: bool,
    coalesce: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: linguist GRAMMAR.lg [--listing] [--stats] [--timings] \
         [--emit pascal|rust] [--first-pass rl|lr] [--no-subsumption] [--coalesce]"
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        path: String::new(),
        listing: false,
        stats: false,
        timings: false,
        emit: None,
        first: Direction::RightToLeft,
        no_subsumption: false,
        coalesce: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listing" => cli.listing = true,
            "--stats" => cli.stats = true,
            "--timings" => cli.timings = true,
            "--no-subsumption" => cli.no_subsumption = true,
            "--coalesce" => cli.coalesce = true,
            "--emit" => match args.next().as_deref() {
                Some("pascal") => cli.emit = Some(TargetOpt::Pascal),
                Some("rust") => cli.emit = Some(TargetOpt::Rust),
                _ => usage(),
            },
            "--first-pass" => match args.next().as_deref() {
                Some("rl") => cli.first = Direction::RightToLeft,
                Some("lr") => cli.first = Direction::LeftToRight,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ if cli.path.is_empty() && !a.starts_with('-') => cli.path = a,
            _ => usage(),
        }
    }
    if cli.path.is_empty() {
        usage();
    }
    if !cli.listing && !cli.timings && cli.emit.is_none() {
        cli.stats = true;
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_args();
    let source = match std::fs::read_to_string(&cli.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("linguist: cannot read {}: {}", cli.path, e);
            return ExitCode::FAILURE;
        }
    };
    let opts = DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: cli.first,
                max_passes: 32,
            },
            disable_subsumption: cli.no_subsumption,
            group_mode: if cli.coalesce {
                GroupMode::CoalesceCopies
            } else {
                GroupMode::SameName
            },
            ..Config::default()
        },
        target: cli.emit,
    };
    let out = match run(&source, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("linguist: {}: {}", cli.path, e);
            return ExitCode::FAILURE;
        }
    };

    if cli.stats {
        println!("{}", out.stats);
        let sub = out.analysis.subsumption.stats(&out.analysis.grammar);
        println!(
            "static subsumption:   {} attrs static, {}/{} copy-rules subsumed",
            sub.static_attrs, sub.subsumed_rules, sub.copy_rules
        );
    }
    if cli.timings {
        println!("{}", out.timings);
    }
    if cli.listing {
        println!("{}", out.listing);
    }
    if cli.emit.is_some() {
        print!("{}", out.generated.full_source());
    }
    ExitCode::SUCCESS
}
