//! `linguist check`: run every stage and every lint, collect coded
//! findings instead of aborting at the first failing overlay.
//!
//! [`crate::driver::run`] reproduces the original pipeline's behaviour —
//! the first failing overlay stops the run. This driver exists for the
//! *diagnosis* use case: it keeps going past completeness and
//! circularity errors so one invocation reports everything the analyses
//! know, each finding carrying its stable `AG0xx` code, source span,
//! and JSON payload.

use crate::lang::parse;
use crate::lower::lower_with_spans;
use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::check::check_completeness;
use linguist_ag::circularity::check_noncircular;
use linguist_ag::implicit::insert_implicit_copies;
use linguist_ag::lifetime::Lifetimes;
use linguist_ag::lint::{
    circularity_finding, codes, completeness_findings, pass_error_findings, run_lints,
    run_structure_lints, sort_findings, Finding, LintConfig,
};
use linguist_ag::passes::assign_passes;
use linguist_ag::plan::build_plans;
use linguist_ag::subsumption::Subsumption;
use linguist_support::diag::Severity;
use linguist_support::json::Json;

/// Everything one `check` run produced.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// All findings, in canonical (span, severity, code) order.
    pub findings: Vec<Finding>,
    /// The pass count, when the grammar got far enough to have one.
    pub passes: Option<usize>,
}

impl CheckReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// Whether the grammar is usable: no errors.
    pub fn clean(&self) -> bool {
        self.errors() == 0
    }

    /// Whether `--deny-warnings` would accept it: no errors, no
    /// warnings (notes are always allowed).
    pub fn clean_denying_warnings(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    /// Render as `path:line:col: severity[code]: message` lines plus a
    /// one-line summary.
    pub fn render_text(&self, path: &str) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}]: {}\n",
                path, f.span.start.line, f.span.start.col, f.severity, f.code, f.message
            ));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)",
            path,
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        if let Some(p) = self.passes {
            out.push_str(&format!("; {} passes", p));
        }
        out.push('\n');
        out
    }

    /// The machine-readable report: a single deterministic JSON object.
    pub fn to_json(&self, path: &str) -> Json {
        Json::Obj(vec![
            ("grammar".to_string(), Json::str(path)),
            ("errors".to_string(), Json::int(self.errors() as i64)),
            ("warnings".to_string(), Json::int(self.warnings() as i64)),
            ("notes".to_string(), Json::int(self.notes() as i64)),
            (
                "passes".to_string(),
                self.passes.map_or(Json::Null, |p| Json::int(p as i64)),
            ),
            (
                "diagnostics".to_string(),
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
        ])
    }
}

/// Check LINGUIST source text: parse, lower, and run every analysis
/// and lint that still applies, collecting coded findings throughout.
///
/// Staging mirrors the pipeline but degrades instead of aborting:
/// a syntax error is the only unrecoverable stage (there is no grammar
/// to look at); resolution errors suppress everything downstream;
/// completeness and circularity errors suppress only the pass-dependent
/// lints, leaving the structural ones to run.
pub fn check_source(source: &str, config: &Config, lint: &LintConfig) -> CheckReport {
    let lint = LintConfig {
        explain_residual_copies: lint.explain_residual_copies && !config.disable_subsumption,
        ..*lint
    };

    // Stage 1: parse (AG011).
    let file = match parse(source) {
        Ok(f) => f,
        Err(e) => {
            return CheckReport {
                findings: vec![Finding {
                    code: codes::SYNTAX,
                    severity: Severity::Error,
                    span: e.span,
                    message: format!("syntax error: {}", e.message),
                    payload: Json::Obj(vec![("kind".to_string(), Json::str("syntax"))]),
                }],
                passes: None,
            };
        }
    };

    // Stage 2: lower (AG012).
    let (mut grammar, mut spans) = match lower_with_spans(&file) {
        Ok(pair) => pair,
        Err(errs) => {
            let mut findings: Vec<Finding> = errs
                .iter()
                .map(|e| Finding {
                    code: codes::RESOLUTION,
                    severity: Severity::Error,
                    span: e.span,
                    message: e.message.clone(),
                    payload: Json::Obj(vec![("kind".to_string(), Json::str("resolution"))]),
                })
                .collect();
            sort_findings(&mut findings);
            return CheckReport {
                findings,
                passes: None,
            };
        }
    };

    // Stage 3: implicit copies, then completeness (AG007) and
    // circularity (AG006) — both reported, neither fatal to the
    // structural lints.
    let implicit = if config.skip_implicit {
        linguist_ag::implicit::ImplicitStats::default()
    } else {
        insert_implicit_copies(&mut grammar)
    };
    let mut findings = Vec::new();
    let mut well_formed = true;
    if let Err(errs) = check_completeness(&grammar) {
        findings.extend(completeness_findings(&grammar, &spans, &errs));
        well_formed = false;
    }
    let mut io = match check_noncircular(&grammar) {
        Ok(io) => Some(io),
        Err(c) => {
            findings.push(circularity_finding(&grammar, &spans, &c));
            well_formed = false;
            None
        }
    };

    // Stage 3.5: the grammar optimizer — only on well-formed grammars
    // (its soundness argument assumes completeness and non-circularity
    // already hold). Its AG013–AG015 notes surface through run_lints.
    let mut opt = None;
    if well_formed && config.optimize {
        let report = linguist_ag::dataflow::optimize(&mut grammar);
        spans.remap_rules(&report.rule_remap);
        match check_noncircular(&grammar) {
            Ok(new_io) => io = Some(new_io),
            Err(c) => {
                findings.push(circularity_finding(&grammar, &spans, &c));
                well_formed = false;
            }
        }
        opt = Some(report);
    }

    // Stage 4: pass assignment (AG010) and the flow lints — only for
    // well-formed grammars; a completeness gap would make the pass
    // analysis report nonsense.
    let mut passes_count = None;
    if well_formed {
        match assign_passes(&grammar, &config.pass) {
            Ok(passes) => {
                passes_count = Some(passes.num_passes());
                let mut lifetimes = Lifetimes::compute(&grammar, &passes);
                if config.optimize {
                    lifetimes.enable_record_elision();
                }
                let subsumption = if config.disable_subsumption {
                    Subsumption::disabled(&grammar)
                } else {
                    Subsumption::compute(&grammar, config.group_mode, config.costs, Some(&passes))
                };
                match build_plans(&grammar, &passes) {
                    Ok(plans) => {
                        let analysis = Analysis {
                            grammar,
                            implicit,
                            io: io.unwrap_or_default(),
                            passes,
                            lifetimes,
                            subsumption,
                            plans,
                            opt,
                        };
                        findings.extend(run_lints(&analysis, &spans, &lint));
                        sort_findings(&mut findings);
                        return CheckReport {
                            findings,
                            passes: passes_count,
                        };
                    }
                    Err(e) => {
                        findings.push(Finding {
                            code: codes::NOT_PASS_EVALUABLE,
                            severity: Severity::Error,
                            span: linguist_support::pos::Span::default(),
                            message: format!("evaluation-plan construction failed: {}", e),
                            payload: Json::Obj(vec![("kind".to_string(), Json::str("plan-error"))]),
                        });
                    }
                }
            }
            Err(e) => findings.extend(pass_error_findings(&e)),
        }
    }

    // Degraded path: the grammar exists but pass-dependent lints are
    // unavailable. Structural lints still apply.
    findings.extend(run_structure_lints(&grammar, &spans));
    sort_findings(&mut findings);
    CheckReport {
        findings,
        passes: passes_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
grammar Tiny ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s = x :
  s.V = x.OBJ ;
end
end
"#;

    #[test]
    fn clean_grammar_reports_no_errors() {
        let r = check_source(GOOD, &Config::default(), &LintConfig::default());
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.passes, Some(1));
    }

    #[test]
    fn syntax_error_is_ag011() {
        let r = check_source("grammar ;;;", &Config::default(), &LintConfig::default());
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].code, codes::SYNTAX);
        assert!(!r.clean());
        assert_eq!(r.passes, None);
    }

    #[test]
    fn resolution_error_is_ag012_with_span() {
        let src = r#"
grammar T ;
nonterminals s : syn V int ;
start s ;
productions
prod s = :
  s.MISSING = 1 ;
end
end
"#;
        let r = check_source(src, &Config::default(), &LintConfig::default());
        assert_eq!(r.findings[0].code, codes::RESOLUTION);
        assert!(r.findings[0].span.start.line >= 6);
    }

    #[test]
    fn incomplete_grammar_still_gets_structural_lints() {
        // s.V is never defined (AG007) and `dead` is unreachable (AG002).
        let src = r#"
grammar T ;
terminals x ;
nonterminals
  s : syn V int ;
  dead ;
start s ;
productions
prod s = x :
end
end
"#;
        let r = check_source(src, &Config::default(), &LintConfig::default());
        assert!(!r.clean());
        let codes_seen: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes_seen.contains(&codes::INCOMPLETE), "{:?}", codes_seen);
        assert!(
            codes_seen.contains(&codes::UNREACHABLE_SYMBOL),
            "{:?}",
            codes_seen
        );
        assert_eq!(r.passes, None);
    }

    #[test]
    fn json_report_is_deterministic() {
        let a = check_source(GOOD, &Config::default(), &LintConfig::default())
            .to_json("tiny.lg")
            .to_string();
        let b = check_source(GOOD, &Config::default(), &LintConfig::default())
            .to_json("tiny.lg")
            .to_string();
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"grammar":"tiny.lg","errors":0"#), "{}", a);
    }

    #[test]
    fn text_report_has_summary_line() {
        let r = check_source(GOOD, &Config::default(), &LintConfig::default());
        let text = r.render_text("tiny.lg");
        assert!(
            text.contains("tiny.lg: 0 error(s), 0 warning(s)"),
            "{}",
            text
        );
        assert!(text.trim_end().ends_with("1 passes"));
    }
}
