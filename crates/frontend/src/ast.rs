//! Abstract syntax of the LINGUIST input language.
//!
//! §IV: "The input to LINGUIST-86 is an attribute grammar. This includes:
//! a list of grammar symbols, a list of attributes for each symbol, a list
//! of productions, and a list of semantic functions associated with each
//! production." This AST mirrors that structure; see [`crate::lang`] for
//! the concrete syntax.

use linguist_support::pos::Span;

/// A whole source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgFile {
    /// Grammar name from the `grammar` header.
    pub name: String,
    /// Symbol declarations in order.
    pub symbols: Vec<SymDecl>,
    /// The declared start symbol.
    pub start: String,
    /// Where the start symbol was named.
    pub start_span: Span,
    /// Productions in order.
    pub productions: Vec<ProdDecl>,
}

/// Which section a symbol was declared in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymKind {
    /// `terminals` section.
    Terminal,
    /// `nonterminals` section.
    Nonterminal,
    /// `limbs` section.
    Limb,
}

/// One symbol declaration with its attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymDecl {
    /// Section.
    pub kind: SymKind,
    /// Symbol name.
    pub name: String,
    /// Where it was declared.
    pub span: Span,
    /// Attribute declarations.
    pub attrs: Vec<AttrDecl>,
}

/// Attribute class keywords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrKind {
    /// `syn`
    Synthesized,
    /// `inh`
    Inherited,
    /// `intrinsic`
    Intrinsic,
    /// `local` (limb attribute)
    Local,
}

/// One attribute declaration: `syn NAME type`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDecl {
    /// Class keyword.
    pub kind: AttrKind,
    /// Attribute name.
    pub name: String,
    /// Uninterpreted type identifier.
    pub type_name: String,
    /// Declaration site.
    pub span: Span,
}

/// One production: `prod lhs = rhs… -> Limb : rules end`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProdDecl {
    /// LHS occurrence name (may carry an occurrence index suffix).
    pub lhs: String,
    /// RHS occurrence names in order.
    pub rhs: Vec<String>,
    /// Optional limb symbol name.
    pub limb: Option<String>,
    /// Site of the production header.
    pub span: Span,
    /// Semantic functions.
    pub rules: Vec<RuleDecl>,
}

/// One semantic function: `targets = expr ;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleDecl {
    /// Defined occurrences (`&`-separated in the source).
    pub targets: Vec<TargetRef>,
    /// Right-hand side.
    pub expr: ExprAst,
    /// Site of the rule.
    pub span: Span,
}

/// A target: `occ.ATTR`, or a bare limb-attribute name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetRef {
    /// `occurrence.ATTRIBUTE`
    Qualified {
        /// Occurrence name (symbol name, maybe with index suffix).
        occ: String,
        /// Attribute name.
        attr: String,
        /// Site.
        span: Span,
    },
    /// Bare identifier: a limb attribute of this production.
    Bare {
        /// Attribute name.
        name: String,
        /// Site.
        span: Span,
    },
}

/// Expression AST (names unresolved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprAst {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// `occ.ATTR` reference.
    Qualified {
        /// Occurrence name.
        occ: String,
        /// Attribute name.
        attr: String,
        /// Site.
        span: Span,
    },
    /// Bare identifier: a limb attribute or an uninterpreted constant.
    Ident {
        /// The identifier.
        name: String,
        /// Site.
        span: Span,
    },
    /// External function call.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<ExprAst>,
        /// Site.
        span: Span,
    },
    /// Infix operation (`+ - AND OR = <> > <`).
    Binop {
        /// Operator text.
        op: BinOpAst,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// `if … then … (elsif … then …)* else … endif` with expression-list
    /// arms.
    If {
        /// `(condition, arm)` pairs.
        branches: Vec<(ExprAst, Vec<ExprAst>)>,
        /// The `else` arm.
        otherwise: Vec<ExprAst>,
    },
}

/// Operator tokens of §IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOpAst {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
}
