//! End-to-end translator tests: LINGUIST source in, working translator
//! out, concrete input evaluated through the file-resident APT.

use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{EvalOptions, Strategy};
use linguist_eval::value::Value;
use linguist_frontend::driver::{run, DriverOptions};
use linguist_frontend::Translator;
use linguist_lexgen::ScannerDef;

/// A desk calculator: sums and differences over integers, with a running
/// position attribute flowing down (to exercise inherited flow).
const CALC: &str = r#"
# A desk calculator in the LINGUIST input language.
grammar Calc ;

terminals
  NUMBER : intrinsic VAL int ;
  PLUS ;
  MINUS ;
nonterminals
  expr : syn V int ;
  term : syn V int ;

start expr ;

productions
prod expr0 = expr1 PLUS term :
  expr0.V = expr1.V + term.V ;
end
prod expr0 = expr1 MINUS term :
  expr0.V = expr1.V - term.V ;
end
prod expr0 = term :
  expr0.V = term.V ;
end
prod term = NUMBER :
  term.V = NUMBER.VAL ;
end
end
"#;

fn calc_translator() -> Translator {
    let out = run(CALC, &DriverOptions::default()).expect("calc grammar analyzes");
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("NUMBER", "[0-9]+")
        .token("PLUS", r"\+")
        .token("MINUS", "-")
        .build()
        .expect("calc scanner");
    Translator::new(out.analysis, scanner).expect("calc CFG is LALR(1)")
}

#[test]
fn calculator_translates_arithmetic() {
    let t = calc_translator();
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();
    for (input, expect) in [("1+2", 3i64), ("10-3-4", 3), ("7", 7), ("1+2+3+4+5-6", 9)] {
        let result = t.translate(input, &funcs, &opts).expect(input);
        assert_eq!(
            result.output(&t.analysis, "V"),
            Some(&Value::Int(expect)),
            "{}",
            input
        );
    }
}

#[test]
fn calculator_rejects_bad_input() {
    let t = calc_translator();
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();
    let err = t.translate("1++2", &funcs, &opts).unwrap_err();
    assert!(err.to_string().contains("syntax error"));
    let err = t.translate("1 + $", &funcs, &opts).unwrap_err();
    assert!(err.to_string().contains("no token rule"));
}

#[test]
fn driver_reports_overlays_and_listing() {
    let out = run(CALC, &DriverOptions::default()).unwrap();
    assert_eq!(out.stats.productions, 4);
    assert_eq!(out.stats.passes, 1);
    assert!(out.listing.contains("PRODUCTIONS"));
    assert!(out.listing.contains("# pass 1"));
    assert!(out.listing.contains("STATISTICS"));
    assert_eq!(out.timings.generation.len(), 1);
    assert!(out.lines_per_minute() > 0.0);
    assert_eq!(out.generated.passes.len(), 1);
    assert!(out.generated.passes[0].source.contains("procedure"));
}

#[test]
fn inherited_flow_through_translator() {
    // A language where each leaf's value is scaled by a depth attribute
    // inherited from above: exercises inherited rules through parsing.
    let src = r#"
grammar Depth ;
terminals
  x : intrinsic OBJ int ;
  L ;
  R ;
nonterminals
  tree : syn SUM int ;
  wrapped : syn SUM int, inh D int ;

start tree ;

productions
prod tree = wrapped :
  wrapped.D = 1 ;
  tree.SUM = wrapped.SUM ;
end
prod wrapped0 = L wrapped1 R :
  wrapped1.D = wrapped0.D + 1 ;
  wrapped0.SUM = wrapped1.SUM ;
end
prod wrapped = x :
  wrapped.SUM = wrapped.D ;
end
end
"#;
    let out = run(src, &DriverOptions::default()).unwrap();
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("x", "x")
        .token("L", r"\(")
        .token("R", r"\)")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let funcs = Funcs::standard();
    let opts = EvalOptions::default();
    // ((x)) : depth = 3.
    let r = t.translate("((x))", &funcs, &opts).unwrap();
    assert_eq!(r.output(&t.analysis, "SUM"), Some(&Value::Int(3)));
    let r = t.translate("x", &funcs, &opts).unwrap();
    assert_eq!(r.output(&t.analysis, "SUM"), Some(&Value::Int(1)));
}

#[test]
fn multi_pass_language_translates() {
    // Right-to-left flow: every leaf's displayed value is the value of
    // the *rightmost* leaf (needs information to travel right-to-left,
    // then the result synthesized in a later pass).
    let src = r#"
grammar Rightmost ;
terminals
  n : intrinsic VAL int ;
nonterminals
  list : syn LAST int, syn OUT int ;
  item : syn V int ;

start list ;

productions
prod list0 = list1 item :
  list0.LAST = item.V ;
  list0.OUT = list0.LAST ;
end
prod list0 = item :
  list0.LAST = item.V ;
  list0.OUT = list0.LAST ;
end
prod item = n :
  item.V = n.VAL ;
end
end
"#;
    let out = run(src, &DriverOptions::default()).unwrap();
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("n", "[0-9]+")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let r = t
        .translate("1 2 3 9", &Funcs::standard(), &EvalOptions::default())
        .unwrap();
    assert_eq!(r.output(&t.analysis, "OUT"), Some(&Value::Int(9)));
}

#[test]
fn default_strategy_is_bottom_up_first_pass_right_to_left() {
    // The driver's default configuration matches the paper: "LINGUIST-86
    // itself uses the first method" (bottom-up emission, first pass R-L).
    let out = run(CALC, &DriverOptions::default()).unwrap();
    assert_eq!(
        out.analysis.passes.direction(1),
        linguist_ag::passes::Direction::RightToLeft
    );
    let opts = EvalOptions {
        strategy: Strategy::BottomUp,
        ..EvalOptions::default()
    };
    let scanner = ScannerDef::new()
        .skip(r"[ \t\n]+")
        .token("NUMBER", "[0-9]+")
        .token("PLUS", r"\+")
        .token("MINUS", "-")
        .build()
        .unwrap();
    let t = Translator::new(out.analysis, scanner).unwrap();
    let r = t.translate("2+2", &Funcs::standard(), &opts).unwrap();
    assert_eq!(r.output(&t.analysis, "V"), Some(&Value::Int(4)));
}

#[test]
fn unbound_scanner_token_is_rejected() {
    let out = run(CALC, &DriverOptions::default()).unwrap();
    let scanner = ScannerDef::new()
        .token("NUMBER", "[0-9]+")
        .token("STRANGE", "@")
        .build()
        .unwrap();
    let err = Translator::new(out.analysis, scanner).unwrap_err();
    assert!(err.to_string().contains("STRANGE"));
}

#[test]
fn batch_isolates_failures_and_reports_them_typed() {
    use linguist_frontend::driver::{run_batch, DriverError};

    // Two good grammars around one that every overlay rejects: the batch
    // must finish with the failure typed in its own slot, the siblings
    // untouched, and no panic-classified failures.
    let broken = "grammar Broken ; this is not linguist source";
    let sources = [CALC, broken, CALC];
    let (results, stats) = run_batch(&sources, &DriverOptions::default(), 3);

    assert_eq!(stats.jobs, 3);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.panicked, 0, "a syntax error is not a panic");
    assert!(results[0].is_ok());
    assert!(results[2].is_ok());
    match &results[1] {
        Err(DriverError::Syntax(_)) => {}
        other => panic!("expected a typed syntax error, got {:?}", other.is_ok()),
    }
}
