//! Golden diagnostic tests: one fixture grammar per lint code, each
//! pinning the exact `AG0xx` code, source span, and JSON payload the
//! check driver must report — plus the meta grammar, which must check
//! clean (zero errors, zero warnings) and deterministically.

use linguist_ag::analysis::Config;
use linguist_ag::lint::{codes, Finding, LintConfig};
use linguist_ag::passes::PassConfig;
use linguist_frontend::check::{check_source, CheckReport};
use linguist_support::json::Json;

const META: &str = include_str!("../../grammars/lg/meta.lg");

fn check(source: &str) -> CheckReport {
    check_source(source, &Config::default(), &LintConfig::default())
}

fn only(report: &CheckReport, code: &str) -> Vec<Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.code == code)
        .cloned()
        .collect()
}

fn payload_str<'a>(f: &'a Finding, key: &str) -> Option<&'a str> {
    f.payload.get(key).and_then(Json::as_str)
}

// ----------------------------------------------------------- AG001

#[test]
fn ag001_unused_attribute_fixture() {
    let src = "\
grammar Warny ;
terminals  x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  t : syn V int, syn DEAD int ;
start s ;
productions
prod s = t :
  s.V = t.V + 0 ;
end
prod t = x :
  t.V = x.OBJ ;
  t.DEAD = x.OBJ + 1 ;
end
end
";
    let r = check(src);
    let f = only(&r, codes::UNUSED_ATTRIBUTE);
    assert_eq!(f.len(), 1, "{:?}", f);
    let f = &f[0];
    // Span: the `DEAD` declaration on line 5.
    assert_eq!(f.span.start.line, 5);
    assert_eq!(f.message, "synthesized attribute t.DEAD is never consumed");
    assert_eq!(payload_str(f, "attr"), Some("t.DEAD"));
    assert_eq!(payload_str(f, "class"), Some("synthesized"));
    assert_eq!(
        f.payload.get("computed_definitions").and_then(Json::as_i64),
        Some(1)
    );
    assert_eq!(f.severity, linguist_support::diag::Severity::Warning);
}

// ----------------------------------------------------- AG002 / AG003

#[test]
fn ag002_unreachable_symbol_fixture() {
    let src = "\
grammar Island ;
terminals  x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  dead ;
start s ;
productions
prod s = x :
  s.V = x.OBJ ;
end
prod dead = x :
end
end
";
    let r = check(src);
    let f = only(&r, codes::UNREACHABLE_SYMBOL);
    assert_eq!(f.len(), 1, "{:?}", f);
    assert_eq!(f[0].span.start.line, 5);
    assert_eq!(
        f[0].message,
        "nonterminal dead is unreachable from the start symbol s"
    );
    assert_eq!(payload_str(&f[0], "symbol"), Some("dead"));
}

#[test]
fn ag003_unproductive_symbol_fixture() {
    let src = "\
grammar Loop ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
end
";
    let r = check(src);
    let f = only(&r, codes::UNPRODUCTIVE_SYMBOL);
    assert_eq!(f.len(), 1, "{:?}", f);
    assert_eq!(f[0].span.start.line, 3);
    assert_eq!(f[0].message, "nonterminal s derives no terminal string");
    assert_eq!(
        f[0].payload.get("productions").and_then(Json::as_i64),
        Some(1)
    );
}

// ----------------------------------------------------------- AG004

#[test]
fn ag004_residual_copy_fixture() {
    // s.V = t.V copies from an attribute fed by intrinsic data; the
    // source can never be statically allocated, so subsumption keeps
    // the copy and the lint explains why.
    let src = "\
grammar Copy ;
terminals  x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  t : syn V int ;
start s ;
productions
prod s = t :
  s.V = t.V ;
end
prod t = x :
  t.V = x.OBJ ;
end
end
";
    let r = check(src);
    let f = only(&r, codes::RESIDUAL_COPY);
    // Both rules are copies (t.V = x.OBJ is a copy from the intrinsic),
    // and neither endpoint can be static; each survivor is explained.
    assert_eq!(f.len(), 2, "{:?}", f);
    let f = &f[0];
    // Span: the first copy rule itself on line 9.
    assert_eq!(f.span.start.line, 9);
    assert_eq!(
        f.message,
        "explicit copy rule s.V = t.V survives subsumption (not-static): \
         s.V is not statically allocated"
    );
    assert_eq!(payload_str(f, "reason"), Some("not-static"));
    assert_eq!(payload_str(f, "source"), Some("t.V"));
    assert_eq!(payload_str(f, "origin"), Some("explicit"));
    assert!(f.message.contains("survives subsumption"), "{}", f.message);
}

// ----------------------------------------------------------- AG005

#[test]
fn ag005_pass_blocker_fixture() {
    // b.CTX = a.V forces a second (left-to-right) pass under the
    // default right-to-left bootstrap: b sits right of a, so the
    // value is not yet available when pass 1 reaches b.
    let src = "\
grammar Bounce ;
terminals  x : intrinsic OBJ int ;
nonterminals
  root : syn OUT int ;
  a : syn V int ;
  b : syn W int, inh CTX int ;
start root ;
productions
prod root = a b :
  b.CTX = a.V ;
  root.OUT = b.W ;
end
prod a = x :
  a.V = x.OBJ ;
end
prod b = x :
  b.W = b.CTX + x.OBJ ;
end
end
";
    let r = check(src);
    assert_eq!(r.passes, Some(2));
    let f = only(&r, codes::PASS_BLOCKER);
    assert_eq!(f.len(), 1, "{:?}", f);
    let f = &f[0];
    assert_eq!(f.payload.get("pass").and_then(Json::as_i64), Some(2));
    assert_eq!(payload_str(f, "direction"), Some("left-to-right"));
    assert!(
        f.message.contains("b.CTX <- a.V"),
        "culprit chain missing: {}",
        f.message
    );
    // Span: the production whose dependency forced the boundary.
    assert_eq!(f.span.start.line, 9);
}

// ----------------------------------------------------------- AG006

#[test]
fn ag006_circularity_fixture() {
    let src = "\
grammar Cycle ;
terminals  x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  t : syn S int, inh I int ;
start s ;
productions
prod s = t :
  t.I = t.S ;
  s.V = t.S ;
end
prod t = x :
  t.S = t.I ;
end
end
";
    let r = check(src);
    assert!(!r.clean());
    let f = only(&r, codes::CIRCULARITY);
    assert_eq!(f.len(), 1, "{:?}", f);
    let f = &f[0];
    assert!(f.message.contains("potential circularity"), "{}", f.message);
    assert!(f.message.contains("t.I") && f.message.contains("t.S"));
    let cycle = f.payload.get("cycle").and_then(Json::as_arr).unwrap();
    assert!(cycle.len() >= 2, "cycle too short: {}", f.payload);
}

// ----------------------------------------------------------- AG007

#[test]
fn ag007_incomplete_fixture() {
    let src = "\
grammar Gap ;
terminals  x ;
nonterminals  s : syn V int ;
start s ;
productions
prod s = x :
end
end
";
    let r = check(src);
    let f = only(&r, codes::INCOMPLETE);
    assert_eq!(f.len(), 1, "{:?}", f);
    let f = &f[0];
    assert_eq!(f.span.start.line, 6); // the production with the gap
    assert_eq!(payload_str(f, "kind"), Some("undefined"));
    assert_eq!(payload_str(f, "occurrence"), Some("s.V"));
    assert!(
        f.message
            .contains("no semantic function defines s.V (lhs) in this production of s"),
        "{}",
        f.message
    );
    assert!(!r.clean());
}

// ----------------------------------------------------------- AG008

#[test]
fn ag008_lifetime_hotspot_fixture() {
    // Same bounce shape as AG005; with the threshold lowered to 1,
    // a.V (computed in pass 1, consumed in pass 2) is a hotspot.
    let src = "\
grammar Bounce ;
terminals  x : intrinsic OBJ int ;
nonterminals
  root : syn OUT int ;
  a : syn V int ;
  b : syn W int, inh CTX int ;
start root ;
productions
prod root = a b :
  b.CTX = a.V ;
  root.OUT = b.W ;
end
prod a = x :
  a.V = x.OBJ ;
end
prod b = x :
  b.W = b.CTX + x.OBJ ;
end
end
";
    let r = check_source(
        src,
        &Config::default(),
        &LintConfig {
            lifetime_threshold: 1,
            ..LintConfig::default()
        },
    );
    let f = only(&r, codes::LIFETIME_HOTSPOT);
    let hot: Vec<&Finding> = f
        .iter()
        .filter(|f| payload_str(f, "attr") == Some("a.V"))
        .collect();
    assert_eq!(hot.len(), 1, "{:?}", f);
    let f = hot[0];
    assert_eq!(f.span.start.line, 5); // a.V's declaration
    assert_eq!(f.payload.get("earliest").and_then(Json::as_i64), Some(1));
    assert_eq!(f.payload.get("latest").and_then(Json::as_i64), Some(2));
    assert!(f.message.contains("live from pass 1 to pass 2"));
}

// ----------------------------------------------------------- AG009

#[test]
fn ag009_shadowed_attribute_fixture() {
    let src = "\
grammar Shadow ;
terminals  x : intrinsic OBJ int ;
nonterminals
  s : syn VAL int ;
  t : syn VAL string ;
start s ;
productions
prod s = t :
  s.VAL = t.VAL ;
end
prod t = x :
  t.VAL = x.OBJ ;
end
end
";
    let r = check(src);
    let f = only(&r, codes::SHADOWED_ATTRIBUTE);
    assert_eq!(f.len(), 1, "{:?}", f);
    let f = &f[0];
    assert_eq!(f.span.start.line, 5); // the later, conflicting decl
    assert_eq!(payload_str(f, "attr"), Some("t.VAL"));
    assert_eq!(payload_str(f, "type"), Some("string"));
    assert_eq!(payload_str(f, "earlier"), Some("s.VAL"));
    assert_eq!(payload_str(f, "earlier_type"), Some("int"));
}

// ----------------------------------------------------------- AG010

#[test]
fn ag010_not_pass_evaluable_fixture() {
    // The bounce grammar needs two passes; with max_passes capped at 1
    // the schedule cannot exist.
    let src = "\
grammar Bounce ;
terminals  x : intrinsic OBJ int ;
nonterminals
  root : syn OUT int ;
  a : syn V int ;
  b : syn W int, inh CTX int ;
start root ;
productions
prod root = a b :
  b.CTX = a.V ;
  root.OUT = b.W ;
end
prod a = x :
  a.V = x.OBJ ;
end
prod b = x :
  b.W = b.CTX + x.OBJ ;
end
end
";
    let config = Config {
        pass: PassConfig {
            max_passes: 1,
            ..PassConfig::default()
        },
        ..Config::default()
    };
    let r = check_source(src, &config, &LintConfig::default());
    assert!(!r.clean());
    let f = only(&r, codes::NOT_PASS_EVALUABLE);
    assert_eq!(f.len(), 1, "{:?}", f);
    assert_eq!(payload_str(&f[0], "kind"), Some("too-many-passes"));
    assert_eq!(f[0].payload.get("limit").and_then(Json::as_i64), Some(1));
    // Structural lints still ran on the degraded path.
    assert_eq!(r.passes, None);
}

// ----------------------------------------------- AG011 / AG012

#[test]
fn ag011_syntax_error_fixture() {
    let r = check("grammar ;;;");
    assert_eq!(r.findings.len(), 1);
    let f = &r.findings[0];
    assert_eq!(f.code, codes::SYNTAX);
    assert_eq!(payload_str(f, "kind"), Some("syntax"));
    assert!(f.message.starts_with("syntax error:"), "{}", f.message);
}

#[test]
fn ag012_resolution_error_fixture() {
    let src = "\
grammar Res ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s = x :
  s.V = x.NOPE ;
end
end
";
    let r = check(src);
    assert!(!r.clean());
    let f = only(&r, codes::RESOLUTION);
    assert_eq!(f.len(), 1, "{:?}", f);
    assert_eq!(f[0].span.start.line, 7);
    assert_eq!(payload_str(&f[0], "kind"), Some("resolution"));
    assert!(f[0].message.contains("NOPE"), "{}", f[0].message);
}

// ------------------------------------------------------ meta golden

#[test]
fn meta_checks_clean_with_pinned_severity_counts() {
    let r = check(META);
    assert_eq!(r.errors(), 0, "meta must have zero errors");
    assert_eq!(
        r.warnings(),
        0,
        "meta must have zero warnings: {:?}",
        r.findings
            .iter()
            .filter(|f| f.severity == linguist_support::diag::Severity::Warning)
            .map(|f| &f.message)
            .collect::<Vec<_>>()
    );
    assert_eq!(r.passes, Some(4));
    assert!(r.clean_denying_warnings());
    // The note population is stable: the paper's copy residue plus the
    // schedule explanation and a handful of structural notes.
    assert_eq!(r.notes(), 100);
}

#[test]
fn meta_residue_notes_match_the_papers_subsumption_table() {
    // 154 copy rules, 75 subsumed: every one of the 79 survivors gets
    // exactly one AG004 explanation.
    let r = check(META);
    assert_eq!(only(&r, codes::RESIDUAL_COPY).len(), 79);
}

#[test]
fn meta_pass_blockers_name_the_schedule_dependencies() {
    // The meta grammar is engineered around a 4-pass schedule
    // (R-L, L-R, R-L, L-R); each boundary must be explained by the
    // attribute families that force it.
    let r = check(META);
    let blockers = only(&r, codes::PASS_BLOCKER);
    assert_eq!(blockers.len(), 3, "one blocker per boundary beyond pass 1");
    let by_pass = |k: i64| -> &Finding {
        blockers
            .iter()
            .find(|f| f.payload.get("pass").and_then(Json::as_i64) == Some(k))
            .unwrap()
    };
    // Pass 2 (L-R): the duplicate-detection SEEN threading.
    let p2 = by_pass(2);
    assert_eq!(payload_str(p2, "direction"), Some("left-to-right"));
    assert!(p2.message.contains("symdecl.SEEN <- symdecls.OUTSEEN"));
    // Pass 3 (R-L): the backward used-later liveness flow.
    let p3 = by_pass(3);
    assert_eq!(payload_str(p3, "direction"), Some("right-to-left"));
    assert!(p3
        .message
        .contains("sections.USEDLATER <- FileLimb.ALLUSED"));
    // Pass 4 (L-R): message numbering off the pass-3 results.
    let p4 = by_pass(4);
    assert_eq!(payload_str(p4, "direction"), Some("left-to-right"));
    assert!(p4.message.contains("symdecl.NUM <- symdecls.OUTNUM"));
}

#[test]
fn meta_json_report_is_deterministic_across_runs() {
    let a = check(META).to_json("meta.lg").to_string();
    let b = check(META).to_json("meta.lg").to_string();
    assert_eq!(a, b);
    assert!(a.starts_with(r#"{"grammar":"meta.lg","errors":0,"warnings":0"#));
}

#[test]
fn every_registered_code_has_severity_and_description() {
    // The registry is the documentation contract for the JSON schema:
    // sorted, unique, and covering every code the fixtures above pin.
    let codes_seen: Vec<&str> = linguist_ag::lint::REGISTRY.iter().map(|e| e.0).collect();
    for c in [
        codes::UNUSED_ATTRIBUTE,
        codes::UNREACHABLE_SYMBOL,
        codes::UNPRODUCTIVE_SYMBOL,
        codes::RESIDUAL_COPY,
        codes::PASS_BLOCKER,
        codes::CIRCULARITY,
        codes::INCOMPLETE,
        codes::LIFETIME_HOTSPOT,
        codes::SHADOWED_ATTRIBUTE,
        codes::NOT_PASS_EVALUABLE,
        codes::SYNTAX,
        codes::RESOLUTION,
    ] {
        assert!(codes_seen.contains(&c), "{} missing from REGISTRY", c);
    }
}
