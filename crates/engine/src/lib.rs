//! The compiled-evaluator execution engine.
//!
//! The paper's central claim is that LINGUIST *generates* an evaluator:
//! the production procedures in its code-size tables are compiled code.
//! This crate makes that true for the reproduction. Where `linguist-eval`
//! interprets per-pass plans at runtime, the engine runs the real Rust
//! evaluators emitted by `linguist_codegen::rustgen` through a two-rung
//! build ladder:
//!
//! * **AOT** — the five bundled grammars' generated evaluators are
//!   checked in under `generated/` and built as ordinary workspace
//!   members. At runtime a grammar is matched to its AOT entry by the
//!   FNV-1a content hash of its *current* generated source (plus a full
//!   string compare), so any drift between the analysis and the
//!   checked-in artifact falls back instead of running stale code. AOT
//!   evaluation is an in-process function call.
//! * **JIT** — novel grammars are compiled on demand with a bare `rustc`
//!   subprocess into a cache directory keyed by the same content hash
//!   ([`jit::JitCache`]), then executed as a subprocess speaking the APT
//!   protocol (boundary-0 file on stdin, encoded outputs on stdout).
//!
//! Every rung degrades to the interpreter with a typed
//! [`FallbackReason`] — `rustc` missing, compilation failure, registry
//! miss, or a runtime error in compiled code — never a panic, and never
//! a silently different answer: on *any* compiled-side error the engine
//! re-runs the interpreter so callers observe exactly the interpreter's
//! result or error.
//!
//! The ABI between host and compiled code is the existing APT framing:
//! the host serializes the parse tree's boundary-0 file exactly as the
//! interpreter would read it, and receives the root's synthesized
//! attributes as `[attr u32 LE][value bytes]…` — byte-identical to
//! `differential::encoded_outputs` on the interpreter's result. That is
//! what lets the differential oracle police the engine.

pub mod jit;

use linguist_ag::analysis::Analysis;
use linguist_ag::ids::AttrId;
use linguist_ag::passes::Direction;
use linguist_codegen::rustgen;
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, EvalError, EvalOptions, EvalStats, Evaluation, Strategy};
use linguist_eval::tree::PTree;
use linguist_eval::value::Value;
use linguist_eval::AptWriter;
use linguist_support::intern::Name;
use linguist_support::list::List;
use linguist_support::pfunc::PartialFn;
use linguist_support::set::LSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which execution engine evaluates a grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The plan interpreter in `linguist-eval` (the default).
    #[default]
    Interpreted,
    /// Checked-in generated evaluator, linked into this process.
    CompiledAot,
    /// Generated evaluator compiled on demand by `rustc` and run as a
    /// subprocess.
    CompiledJit,
}

impl EngineKind {
    /// Stable lowercase token (CLI flag values, serve stats).
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Interpreted => "interpreted",
            EngineKind::CompiledAot => "aot",
            EngineKind::CompiledJit => "jit",
        }
    }

    /// Parse a CLI/config token. Accepts the `as_str` forms plus a few
    /// obvious synonyms.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s.to_ascii_lowercase().as_str() {
            "interpreted" | "interp" | "interpreter" => Some(EngineKind::Interpreted),
            "aot" | "compiled-aot" | "compiled" => Some(EngineKind::CompiledAot),
            "jit" | "compiled-jit" => Some(EngineKind::CompiledJit),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a compiled engine degraded to the interpreter.
///
/// Every fallback is typed so the serve tier can report
/// `engine_fallback` with a machine-readable code, and tests can assert
/// on the precise degradation path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// `rustc` is not on `PATH` (or failed the version probe).
    RustcUnavailable,
    /// `rustc` rejected the generated source; payload is (truncated)
    /// compiler stderr.
    CompileFailed(String),
    /// The grammar's generated source matches no checked-in AOT entry;
    /// payload is its content hash.
    AotMiss(String),
    /// Compiled code was built and invoked but errored (or panicked) at
    /// run time; the interpreter's answer is authoritative.
    RunFailed(String),
}

impl FallbackReason {
    /// Stable machine-readable code for serve error details.
    pub fn code(&self) -> &'static str {
        match self {
            FallbackReason::RustcUnavailable => "rustc_unavailable",
            FallbackReason::CompileFailed(_) => "compile_failed",
            FallbackReason::AotMiss(_) => "aot_miss",
            FallbackReason::RunFailed(_) => "run_failed",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            FallbackReason::RustcUnavailable => "rustc not found on PATH".to_string(),
            FallbackReason::CompileFailed(e) => {
                format!("generated evaluator failed to compile: {}", e)
            }
            FallbackReason::AotMiss(h) => format!("no AOT evaluator for content hash {}", h),
            FallbackReason::RunFailed(e) => format!("compiled evaluator failed at run time: {}", e),
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

/// Engine selection and build knobs.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Which engine to run.
    pub kind: EngineKind,
    /// Pass `-O` to on-demand `rustc` builds (slower compile, faster
    /// evaluator). Defaults to `false`: for typical grammars the
    /// evaluator is I/O-shaped enough that `-O` rarely pays back its
    /// compile time on first use.
    pub optimize: bool,
    /// On-demand build cache directory. Defaults to
    /// `$LINGUIST_JIT_CACHE` or `<temp>/linguist86-jit`.
    pub cache_dir: Option<PathBuf>,
}

/// Counter snapshot for stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Evaluations served by an in-process AOT evaluator.
    pub aot_runs: u64,
    /// Evaluations served by a JIT-compiled subprocess.
    pub jit_runs: u64,
    /// Evaluations served by the interpreter (selected or degraded).
    pub interpreted_runs: u64,
    /// Evaluations that degraded to the interpreter after a compiled
    /// engine was requested.
    pub fallbacks: u64,
    /// `rustc` invocations the JIT cache actually performed (cache hits
    /// don't count).
    pub jit_compiles: u64,
}

#[derive(Default)]
struct Counters {
    aot_runs: AtomicU64,
    jit_runs: AtomicU64,
    interpreted_runs: AtomicU64,
    fallbacks: AtomicU64,
}

/// A grammar resolved against the engine: where its evaluations will
/// actually run. Cache one per grammar (the serve tier keeps it
/// alongside the analysis) — preparing is where JIT compilation happens.
#[derive(Debug)]
pub struct PreparedEngine {
    requested: EngineKind,
    hash: String,
    route: Route,
}

#[derive(Debug)]
enum Route {
    Interpret,
    Aot(fn(&[u8]) -> Result<Vec<u8>, String>),
    Jit(PathBuf),
    Degraded(FallbackReason),
}

impl PreparedEngine {
    /// The engine the caller asked for.
    pub fn requested(&self) -> EngineKind {
        self.requested
    }

    /// The engine evaluations will actually use.
    pub fn effective(&self) -> EngineKind {
        match self.route {
            Route::Interpret | Route::Degraded(_) => EngineKind::Interpreted,
            Route::Aot(_) => EngineKind::CompiledAot,
            Route::Jit(_) => EngineKind::CompiledJit,
        }
    }

    /// Content hash of the grammar's generated source (empty for the
    /// interpreted route, which never generates).
    pub fn content_hash(&self) -> &str {
        &self.hash
    }

    /// The degradation recorded at prepare time, if any.
    pub fn fallback(&self) -> Option<&FallbackReason> {
        match &self.route {
            Route::Degraded(r) => Some(r),
            _ => None,
        }
    }
}

/// One evaluation's result plus which engine produced it.
#[derive(Debug)]
pub struct EngineOutcome {
    /// The evaluation result — identical to what the interpreter would
    /// return (on any compiled-side failure the interpreter *is* re-run
    /// and its result returned verbatim).
    pub result: Result<Evaluation, EvalError>,
    /// The engine that produced `result`.
    pub engine_used: EngineKind,
    /// Present when a compiled engine was requested but this evaluation
    /// came from the interpreter.
    pub fallback: Option<FallbackReason>,
}

/// The execution engine. Cheap to construct; holds the JIT build cache
/// and run counters. Share one per process (the serve tier keeps it in
/// the store).
pub struct Engine {
    config: EngineConfig,
    jit: jit::JitCache,
    counters: Counters,
}

impl Engine {
    /// Build an engine from `config`.
    pub fn new(config: EngineConfig) -> Engine {
        let dir = config
            .cache_dir
            .clone()
            .unwrap_or_else(jit::default_cache_dir);
        Engine {
            jit: jit::JitCache::new(dir, config.optimize),
            config,
            counters: Counters::default(),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The on-demand build cache (tests exercise it directly).
    pub fn jit_cache(&self) -> &jit::JitCache {
        &self.jit
    }

    /// Snapshot the run counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            aot_runs: self.counters.aot_runs.load(Ordering::Relaxed),
            jit_runs: self.counters.jit_runs.load(Ordering::Relaxed),
            interpreted_runs: self.counters.interpreted_runs.load(Ordering::Relaxed),
            fallbacks: self.counters.fallbacks.load(Ordering::Relaxed),
            jit_compiles: self.jit.compiles(),
        }
    }

    /// Resolve a grammar against the configured engine. For
    /// [`EngineKind::CompiledJit`] this is where compilation happens
    /// (content-hash cache hit ⇒ zero `rustc` invocations).
    pub fn prepare(&self, analysis: &Analysis) -> PreparedEngine {
        match self.config.kind {
            EngineKind::Interpreted => PreparedEngine {
                requested: EngineKind::Interpreted,
                hash: String::new(),
                route: Route::Interpret,
            },
            EngineKind::CompiledAot => {
                let source = rustgen::rust_source(analysis);
                let hash = rustgen::content_hash(source.as_bytes());
                let route = match aot_lookup(&hash, &source) {
                    Some(f) => Route::Aot(f),
                    None => Route::Degraded(FallbackReason::AotMiss(hash.clone())),
                };
                PreparedEngine {
                    requested: EngineKind::CompiledAot,
                    hash,
                    route,
                }
            }
            EngineKind::CompiledJit => {
                let source = rustgen::rust_source(analysis);
                self.prepare_jit_source(&source)
            }
        }
    }

    /// Prepare the JIT route from explicit generated source. Used by
    /// [`Engine::prepare`] and directly by tests that need to inject a
    /// deliberately broken source.
    pub fn prepare_jit_source(&self, source: &str) -> PreparedEngine {
        let hash = rustgen::content_hash(source.as_bytes());
        let route = match self.jit.ensure_built(&hash, source) {
            Ok(bin) => Route::Jit(bin),
            Err(reason) => Route::Degraded(reason),
        };
        PreparedEngine {
            requested: EngineKind::CompiledJit,
            hash,
            route,
        }
    }

    /// Evaluate `tree` through `prepared`.
    ///
    /// Compiled routes replicate the interpreter's pre-checks (tree
    /// validation, strategy compatibility) so front-door errors are
    /// *identical* `EvalError`s; any error beyond that point — compile
    /// artifacts misbehaving, subprocess death, a panic inside AOT code —
    /// degrades to a fresh interpreter run whose result is returned
    /// verbatim with [`EngineOutcome::fallback`] set.
    ///
    /// Compiled evaluations ignore interpreter-only instrumentation in
    /// `opts` (budget metering, fault injection, profiling); outputs are
    /// unaffected.
    pub fn evaluate(
        &self,
        prepared: &PreparedEngine,
        analysis: &Analysis,
        funcs: &Funcs,
        tree: &PTree,
        opts: &EvalOptions,
    ) -> EngineOutcome {
        match &prepared.route {
            Route::Interpret => self.interpret(analysis, funcs, tree, opts, None),
            Route::Degraded(reason) => {
                self.interpret(analysis, funcs, tree, opts, Some(reason.clone()))
            }
            Route::Aot(f) => {
                let input = match compiled_input(analysis, tree, opts) {
                    Ok(b) => b,
                    Err(e) => {
                        return EngineOutcome {
                            result: Err(e),
                            engine_used: EngineKind::CompiledAot,
                            fallback: None,
                        }
                    }
                };
                let f = *f;
                let run = catch_unwind(AssertUnwindSafe(|| f(&input)));
                match flatten_run(run) {
                    Ok(bytes) => self.compiled_success(
                        analysis,
                        funcs,
                        tree,
                        opts,
                        bytes,
                        EngineKind::CompiledAot,
                    ),
                    Err(msg) => self.interpret(
                        analysis,
                        funcs,
                        tree,
                        opts,
                        Some(FallbackReason::RunFailed(msg)),
                    ),
                }
            }
            Route::Jit(bin) => {
                let input = match compiled_input(analysis, tree, opts) {
                    Ok(b) => b,
                    Err(e) => {
                        return EngineOutcome {
                            result: Err(e),
                            engine_used: EngineKind::CompiledJit,
                            fallback: None,
                        }
                    }
                };
                match jit::run(bin, &input) {
                    Ok(bytes) => self.compiled_success(
                        analysis,
                        funcs,
                        tree,
                        opts,
                        bytes,
                        EngineKind::CompiledJit,
                    ),
                    Err(msg) => self.interpret(
                        analysis,
                        funcs,
                        tree,
                        opts,
                        Some(FallbackReason::RunFailed(msg)),
                    ),
                }
            }
        }
    }

    /// Raw compiled output bytes for a tree — the engine side of the
    /// differential oracle's fifth leg, byte-comparable against
    /// `encoded_outputs` of the interpreter's evaluation. Unlike
    /// [`Engine::evaluate`] this does *not* degrade: compiled-side
    /// errors surface as `Err` so divergence is visible.
    pub fn compiled_output_bytes(
        &self,
        prepared: &PreparedEngine,
        analysis: &Analysis,
        tree: &PTree,
        opts: &EvalOptions,
    ) -> Result<Vec<u8>, String> {
        let input = compiled_input(analysis, tree, opts).map_err(|e| e.to_string())?;
        match &prepared.route {
            Route::Interpret => Err("interpreted route has no compiled output".to_string()),
            Route::Degraded(reason) => Err(reason.to_string()),
            Route::Aot(f) => {
                let f = *f;
                flatten_run(catch_unwind(AssertUnwindSafe(|| f(&input))))
            }
            Route::Jit(bin) => jit::run(bin, &input),
        }
    }

    fn interpret(
        &self,
        analysis: &Analysis,
        funcs: &Funcs,
        tree: &PTree,
        opts: &EvalOptions,
        fallback: Option<FallbackReason>,
    ) -> EngineOutcome {
        self.counters
            .interpreted_runs
            .fetch_add(1, Ordering::Relaxed);
        if fallback.is_some() {
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        EngineOutcome {
            result: evaluate(analysis, funcs, tree, opts),
            engine_used: EngineKind::Interpreted,
            fallback,
        }
    }

    fn compiled_success(
        &self,
        analysis: &Analysis,
        funcs: &Funcs,
        tree: &PTree,
        opts: &EvalOptions,
        bytes: Vec<u8>,
        kind: EngineKind,
    ) -> EngineOutcome {
        match decode_outputs(&bytes) {
            Ok(outputs) => {
                match kind {
                    EngineKind::CompiledAot => {
                        self.counters.aot_runs.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => self.counters.jit_runs.fetch_add(1, Ordering::Relaxed),
                };
                EngineOutcome {
                    result: Ok(Evaluation {
                        outputs,
                        stats: EvalStats::default(),
                        metrics: None,
                    }),
                    engine_used: kind,
                    fallback: None,
                }
            }
            Err(msg) => self.interpret(
                analysis,
                funcs,
                tree,
                opts,
                Some(FallbackReason::RunFailed(format!(
                    "output decode failed: {}",
                    msg
                ))),
            ),
        }
    }

    /// Adapt this engine into a [`BatchEvaluator`] backend: every batch
    /// job evaluates `prepared` through the usual degradation ladder, so
    /// a whole batch runs compiled with per-job interpreter fallback.
    /// The closure owns `Arc`s of the engine and the prepared route
    /// (batch workers outlive the submitting stack frame).
    ///
    /// [`BatchEvaluator`]: linguist_eval::batch::BatchEvaluator
    pub fn backend(
        self: &Arc<Engine>,
        prepared: Arc<PreparedEngine>,
    ) -> linguist_eval::EvalBackend {
        let engine = Arc::clone(self);
        Arc::new(move |analysis, funcs, tree, opts| {
            engine
                .evaluate(&prepared, analysis, funcs, tree, opts)
                .result
        })
    }
}

fn flatten_run(
    run: Result<Result<Vec<u8>, String>, Box<dyn std::any::Any + Send>>,
) -> Result<Vec<u8>, String> {
    match run {
        Ok(r) => r,
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(format!("compiled evaluator panicked: {}", msg))
        }
    }
}

/// The interpreter's front door, replicated: validate the tree, check
/// strategy/first-pass compatibility, then serialize boundary 0 exactly
/// as `PTree::write_postfix`/`write_prefix` would for the interpreter.
fn compiled_input(
    analysis: &Analysis,
    tree: &PTree,
    opts: &EvalOptions,
) -> Result<Vec<u8>, EvalError> {
    tree.validate(&analysis.grammar)?;
    if analysis.passes.num_passes() > 0 {
        let first = analysis.passes.direction(1);
        let ok = matches!(
            (opts.strategy, first),
            (Strategy::BottomUp, Direction::RightToLeft)
                | (Strategy::Prefix, Direction::LeftToRight)
        );
        if !ok {
            return Err(EvalError::StrategyMismatch {
                strategy: opts.strategy,
                first_direction: first,
            });
        }
    }
    let mut w = AptWriter::create_owned();
    match opts.strategy {
        Strategy::BottomUp => tree.write_postfix(&analysis.grammar, &analysis.lifetimes, &mut w)?,
        Strategy::Prefix => tree.write_prefix(&analysis.grammar, &analysis.lifetimes, &mut w)?,
    }
    let (_summary, bytes) = w.finish_owned()?;
    Ok(bytes)
}

/// Decode `[attr u32 LE][value]…` into interpreter-shaped outputs.
///
/// Mirrors `Value::decode` except for sets: the wire order is the
/// compiled evaluator's in-memory (newest-first) order, so membership is
/// rebuilt by folding `with` over the items *reversed* — the resulting
/// in-memory order matches the interpreter's, and re-encoding reproduces
/// the wire bytes exactly.
fn decode_outputs(bytes: &[u8]) -> Result<Vec<(AttrId, Value)>, String> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(format!("truncated attribute id at byte {}", pos));
        }
        let attr = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("sized"));
        pos += 4;
        let v = decode_value(bytes, &mut pos)?;
        out.push((AttrId(attr), v));
    }
    Ok(out)
}

fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, String> {
    let err = |at: usize| format!("malformed value at byte {}", at);
    let tag = *buf.get(*pos).ok_or_else(|| err(*pos))?;
    *pos += 1;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
        let s = buf.get(*pos..*pos + n).ok_or_else(|| err(*pos))?;
        *pos += n;
        Ok(s)
    };
    match tag {
        0 => {
            let b: [u8; 8] = take(pos, 8)?.try_into().expect("sized");
            Ok(Value::Int(i64::from_le_bytes(b)))
        }
        1 => Ok(Value::Bool(take(pos, 1)?[0] != 0)),
        2 => {
            let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
            Ok(Value::Sym(Name::from_index(u32::from_le_bytes(b) as usize)))
        }
        3 => {
            let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
            let n = u32::from_le_bytes(b) as usize;
            let bytes = take(pos, n)?;
            let s = std::str::from_utf8(bytes).map_err(|_| err(*pos))?;
            Ok(Value::str(s))
        }
        4 => {
            let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
            let n = u32::from_le_bytes(b) as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(buf, pos)?);
            }
            Ok(Value::List(items.into_iter().collect::<List<Value>>()))
        }
        5 => {
            let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
            let n = u32::from_le_bytes(b) as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(buf, pos)?);
            }
            let mut s = LSet::empty();
            for v in items.into_iter().rev() {
                s = s.with(v);
            }
            Ok(Value::Set(s))
        }
        6 => {
            let b: [u8; 4] = take(pos, 4)?.try_into().expect("sized");
            let n = u32::from_le_bytes(b) as usize;
            let mut pairs = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let k = decode_value(buf, pos)?;
                let v = decode_value(buf, pos)?;
                pairs.push((k, v));
            }
            let mut m = PartialFn::empty();
            for (k, v) in pairs.into_iter().rev() {
                m = m.bind(k, v);
            }
            Ok(Value::Map(m))
        }
        _ => Err(err(*pos - 1)),
    }
}

/// The compiled evaluator entry point: APT frame in, output frame out.
type AotFn = fn(&[u8]) -> Result<Vec<u8>, String>;

/// One checked-in ahead-of-time evaluator.
struct AotEntry {
    name: &'static str,
    source: &'static str,
    func: AotFn,
}

static AOT_ENTRIES: &[AotEntry] = &[
    AotEntry {
        name: "calc",
        source: include_str!("../generated/calc/src/lib.rs"),
        func: linguist_aot_calc::evaluate_apt,
    },
    AotEntry {
        name: "knuth",
        source: include_str!("../generated/knuth/src/lib.rs"),
        func: linguist_aot_knuth::evaluate_apt,
    },
    AotEntry {
        name: "block",
        source: include_str!("../generated/block/src/lib.rs"),
        func: linguist_aot_block::evaluate_apt,
    },
    AotEntry {
        name: "meta",
        source: include_str!("../generated/meta/src/lib.rs"),
        func: linguist_aot_meta::evaluate_apt,
    },
    AotEntry {
        name: "pascal",
        source: include_str!("../generated/pascal/src/lib.rs"),
        func: linguist_aot_pascal::evaluate_apt,
    },
    // The same five grammars through the grammar optimizer (the CLI's
    // default `--opt=on` pipeline): optimized analyses generate
    // different evaluator source, so they content-address to their own
    // entries.
    AotEntry {
        name: "calc_opt",
        source: include_str!("../generated/calc_opt/src/lib.rs"),
        func: linguist_aot_calc_opt::evaluate_apt,
    },
    AotEntry {
        name: "knuth_opt",
        source: include_str!("../generated/knuth_opt/src/lib.rs"),
        func: linguist_aot_knuth_opt::evaluate_apt,
    },
    AotEntry {
        name: "block_opt",
        source: include_str!("../generated/block_opt/src/lib.rs"),
        func: linguist_aot_block_opt::evaluate_apt,
    },
    AotEntry {
        name: "meta_opt",
        source: include_str!("../generated/meta_opt/src/lib.rs"),
        func: linguist_aot_meta_opt::evaluate_apt,
    },
    AotEntry {
        name: "pascal_opt",
        source: include_str!("../generated/pascal_opt/src/lib.rs"),
        func: linguist_aot_pascal_opt::evaluate_apt,
    },
];

fn aot_hashes() -> &'static Vec<String> {
    static HASHES: OnceLock<Vec<String>> = OnceLock::new();
    HASHES.get_or_init(|| {
        AOT_ENTRIES
            .iter()
            .map(|e| rustgen::content_hash(e.source.as_bytes()))
            .collect()
    })
}

fn aot_lookup(hash: &str, source: &str) -> Option<AotFn> {
    let hashes = aot_hashes();
    AOT_ENTRIES
        .iter()
        .zip(hashes.iter())
        // Hash match is the index; the full string compare guards
        // against collisions and half-regenerated trees.
        .find(|(e, h)| h.as_str() == hash && e.source == source)
        .map(|(e, _)| e.func)
}

/// The bundled AOT registry: `(grammar name, content hash)` per entry.
pub fn aot_registry() -> Vec<(&'static str, String)> {
    AOT_ENTRIES
        .iter()
        .zip(aot_hashes().iter())
        .map(|(e, h)| (e.name, h.clone()))
        .collect()
}
