//! On-demand `rustc` build cache for generated evaluators.
//!
//! Artifacts are keyed by the FNV-1a content hash of the generated
//! source: `<cache>/<hash>/evaluator` is the compiled binary,
//! `<cache>/<hash>.tmp-<pid>` is an in-progress build directory that is
//! atomically renamed into place on success. A second load of the same
//! grammar therefore compiles zero times, concurrent loads of the same
//! grammar compile once (in-process single-flight; cross-process races
//! are resolved by the rename — the loser keeps the winner's artifact),
//! and a crashed build leaves only a `.tmp-` directory that
//! [`JitCache::sweep_stale`] reclaims.

use crate::FallbackReason;
use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Default cache location: `$LINGUIST_JIT_CACHE`, else
/// `<system temp>/linguist86-jit`.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("LINGUIST_JIT_CACHE") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join("linguist86-jit"),
    }
}

/// Is `rustc` invocable? Probed once per process.
pub fn rustc_available() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| {
        Command::new("rustc")
            .arg("--version")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    })
}

/// Content-hash-keyed build cache (see module docs).
pub struct JitCache {
    dir: PathBuf,
    optimize: bool,
    compiles: AtomicU64,
    inflight: Mutex<HashSet<String>>,
    done: Condvar,
}

impl JitCache {
    /// A cache rooted at `dir`. Nothing is touched until the first build.
    pub fn new(dir: PathBuf, optimize: bool) -> JitCache {
        JitCache {
            dir,
            optimize,
            compiles: AtomicU64::new(0),
            inflight: Mutex::new(HashSet::new()),
            done: Condvar::new(),
        }
    }

    /// Cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `rustc` invocations this cache actually performed (hash hits and
    /// single-flight waiters don't count) — what the reuse tests assert.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Ensure a compiled evaluator for `source` exists; returns the
    /// binary path. Concurrent calls for the same hash block on one
    /// build; calls for already-built hashes return without compiling.
    pub fn ensure_built(&self, hash: &str, source: &str) -> Result<PathBuf, FallbackReason> {
        let bin = self.dir.join(hash).join("evaluator");
        if bin.is_file() {
            return Ok(bin);
        }
        if !rustc_available() {
            return Err(FallbackReason::RustcUnavailable);
        }
        // Single flight: the first caller for a hash builds; the rest
        // wait on the condvar and then pick up the installed artifact.
        {
            let mut inflight = self.inflight.lock().expect("jit inflight lock");
            while inflight.contains(hash) {
                inflight = self.done.wait(inflight).expect("jit inflight wait");
            }
            if bin.is_file() {
                return Ok(bin);
            }
            inflight.insert(hash.to_string());
        }
        let result = self.build(hash, source, &bin);
        {
            let mut inflight = self.inflight.lock().expect("jit inflight lock");
            inflight.remove(hash);
        }
        self.done.notify_all();
        result
    }

    fn build(&self, hash: &str, source: &str, bin: &Path) -> Result<PathBuf, FallbackReason> {
        let tmp = self
            .dir
            .join(format!("{}.tmp-{}", hash, std::process::id()));
        let io_fail =
            |e: std::io::Error| FallbackReason::CompileFailed(format!("build dir: {}", e));
        fs::create_dir_all(&tmp).map_err(io_fail)?;
        let src = tmp.join("evaluator.rs");
        fs::write(&src, source).map_err(io_fail)?;

        let mut cmd = Command::new("rustc");
        cmd.arg("--edition").arg("2021");
        if self.optimize {
            cmd.arg("-O");
        }
        // Match the host's overflow behavior so plain `+` in compiled
        // semantic functions agrees with the interpreter build.
        cmd.arg("-C").arg(if cfg!(debug_assertions) {
            "debug-assertions=on"
        } else {
            "debug-assertions=off"
        });
        cmd.arg("-o").arg(tmp.join("evaluator")).arg(&src);
        let output = match cmd.output() {
            Ok(o) => o,
            Err(e) => {
                let _ = fs::remove_dir_all(&tmp);
                return Err(FallbackReason::CompileFailed(format!(
                    "failed to spawn rustc: {}",
                    e
                )));
            }
        };
        if !output.status.success() {
            let _ = fs::remove_dir_all(&tmp);
            let mut stderr = String::from_utf8_lossy(&output.stderr).into_owned();
            stderr.truncate(4000);
            return Err(FallbackReason::CompileFailed(stderr));
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);

        match fs::rename(&tmp, self.dir.join(hash)) {
            Ok(()) => Ok(bin.to_path_buf()),
            Err(e) => {
                // Lost a cross-process race: fine, use the winner's.
                let _ = fs::remove_dir_all(&tmp);
                if bin.is_file() {
                    Ok(bin.to_path_buf())
                } else {
                    Err(FallbackReason::CompileFailed(format!(
                        "failed to install artifact: {}",
                        e
                    )))
                }
            }
        }
    }

    /// Remove orphaned `.tmp-` build directories older than `max_age`
    /// (crashed or abandoned builds). Installed artifacts are never
    /// touched. Returns the number of directories removed.
    pub fn sweep_stale(&self, max_age: Duration) -> usize {
        let mut removed = 0usize;
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return 0,
        };
        let now = std::time::SystemTime::now();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.contains(".tmp-") {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| now.duration_since(t).ok())
                .map(|age| age >= max_age)
                .unwrap_or(true);
            if stale && fs::remove_dir_all(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

/// Run a compiled evaluator: boundary-0 APT bytes on stdin, encoded
/// outputs on stdout. Nonzero exit (or spawn failure) becomes `Err` with
/// the child's stderr.
pub fn run(bin: &Path, input: &[u8]) -> Result<Vec<u8>, String> {
    let mut child = Command::new(bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("failed to spawn compiled evaluator: {}", e))?;
    // The evaluator reads all of stdin before writing anything, so a
    // sequential write-then-drain cannot deadlock.
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input)
        .map_err(|e| format!("failed to feed compiled evaluator: {}", e))?;
    let output = child
        .wait_with_output()
        .map_err(|e| format!("compiled evaluator did not exit: {}", e))?;
    if output.status.success() {
        Ok(output.stdout)
    } else {
        let stderr = String::from_utf8_lossy(&output.stderr);
        Err(format!(
            "compiled evaluator exited with {}: {}",
            output.status,
            stderr.trim()
        ))
    }
}
