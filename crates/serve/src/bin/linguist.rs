//! The `linguist` command: the translator-writing system as a CLI.
//!
//! ```text
//! linguist GRAMMAR.lg [GRAMMAR2.lg ...] [options]
//!
//!   --listing            print the overlay-6 listing file
//!   --stats              print the §IV statistics block (default)
//!   --timings            print the per-overlay timing table
//!   --profile[=FMT]      compile, then run the generated evaluator over
//!                        a synthetic tree with the pass-level profiler
//!                        on; FMT is text (default) or json
//!   --emit pascal|rust   print the generated evaluator source
//!   --first-pass rl|lr   bootstrap strategy (default rl, like the paper)
//!   --opt[=on|off]       run the grammar optimizer (constant folding,
//!                        copy-chain collapsing, dead-attribute
//!                        elimination) before scheduling; default on,
//!                        `--opt=off` is the ablation
//!   --no-subsumption     disable static subsumption
//!   --coalesce           use the cross-name coalescing extension
//!   --batch              process the grammars as a parallel batch
//!   --jobs N             worker threads for --batch (default: all cores)
//!   --retries N          re-run a failed evaluator pass up to N times
//!                        (exponential backoff, from the last boundary)
//!   --checkpoint-dir DIR checkpoint the profiled evaluation at every
//!                        pass boundary into DIR (durable manifest)
//!   --resume             resume the profiled evaluation from DIR's
//!                        manifest (requires --checkpoint-dir)
//!   --engine KIND        which execution engine runs the profiled
//!                        evaluation: interpreted (default), aot
//!                        (checked-in compiled evaluator), or jit
//!                        (rustc-on-demand). Compiled engines degrade
//!                        to the interpreter with a typed reason.
//!
//! linguist codegen GRAMMAR.lg [--out DIR] [--first-pass rl|lr]
//!                  [--opt[=on|off]] [--no-subsumption] [--coalesce]
//!
//!   Write the grammar's generated evaluator to DIR (default
//!   `<stem>-evaluator/`) as a standalone dependency-free Rust binary
//!   crate: boundary-0 APT on stdin, encoded root outputs on stdout.
//!   The same source the compiled engine builds. When the optimizer is
//!   on (the default), a `impact.json` sidecar records the
//!   per-production change-impact closures for incremental consumers.
//!
//! linguist check GRAMMAR.lg [--format text|json] [--deny-warnings]
//!                [--first-pass rl|lr] [--opt[=on|off]]
//!                [--no-subsumption] [--coalesce]
//!
//!   Run the static-analysis lints and print every coded `AG0xx`
//!   finding with its source position. `--format json` prints one
//!   deterministic JSON object on stdout. Exit status 0 when the
//!   grammar is clean (notes never fail a check), 1 on any error —
//!   or, under `--deny-warnings`, on any warning — and 2 on usage
//!   errors.
//!
//! linguist serve [--socket PATH] [--tcp ADDR] [--workers N] [--queue N]
//!                [--cache N] [--deadline-ms N] [--max-frame-bytes N]
//!                [--idle-timeout-ms N] [--engine interpreted|aot|jit]
//!                [--opt[=on|off]]
//!
//!   Run the resident translation service. At least one of --socket
//!   (Unix-domain) and --tcp (loopback, e.g. 127.0.0.1:0) is required;
//!   the daemon prints one "listening ..." line per bound endpoint on
//!   stderr and runs until a shutdown request or SIGTERM/SIGINT
//!   (either way it drains: stops accepting, finishes in-flight work,
//!   exits 0). --idle-timeout-ms 0 disables the stalled-connection
//!   deadline.
//!
//! linguist router (--socket PATH | --tcp ADDR) --shard SPEC [--shard ...]
//!                 [--health-interval-ms N] [--probe-timeout-ms N]
//!                 [--attempt-timeout-ms N] [--max-attempts N]
//!                 [--breaker-threshold N] [--breaker-cooldown-ms N]
//!
//!   Front a fleet of `linguist serve` shards: requests route by
//!   grammar content hash on a consistent-hash ring, shards are
//!   health-checked and ejected/re-admitted (with hot grammars
//!   replicated back in), and transient failures retry on the next
//!   replica with capped exponential backoff. SPEC is `unix:PATH` or
//!   `tcp:HOST:PORT` (bare paths/addresses also accepted). Speaks the
//!   same wire protocol as `serve`, so `client` and `load` point at
//!   either. Drains on SIGTERM/shutdown like `serve`.
//!
//! linguist load (--socket PATH | --tcp ADDR) [--rate R] [--duration-ms N]
//!               [--grammars N] [--budget N] [--senders N]
//!               [--deadline-ms N] [--retries N] [--json]
//!
//!   Open-loop load generator: offers `rate` translate requests per
//!   second for the duration, spread over `--grammars` distinct
//!   grammar variants, and reports latency measured from each
//!   request's *scheduled* arrival (immune to coordinated omission).
//!   Exit status 0 when every request succeeded, 1 otherwise.
//!
//! linguist client (--socket PATH | --tcp ADDR) [--timeout-ms N]
//!                 [--retries N] COMMAND
//!
//!   load FILE [--scanner NAME] [--name NAME]
//!   translate GRAMMAR (--input TEXT | --input-file FILE | --budget N)
//!             [--deadline-ms N]
//!   check GRAMMAR
//!   ping
//!   stats
//!   shutdown
//!   raw JSON
//!
//!   One request against a running daemon (or router); the JSON reply
//!   is printed on stdout. `--retries N` resends through a fresh
//!   connection, with backoff, when the transport fails or the reply
//!   is a transient typed error (`overloaded`/`shutting_down`/
//!   `shard_unavailable`). Exit status: 0 ok reply, 1 typed server
//!   error, 2 usage, 3 connection refused/failed, 4 timed out —
//!   each with a one-line diagnosis on stderr.
//! ```
//!
//! With one grammar and no `--batch`, runs the classic single-grammar
//! pipeline. With `--batch` (or several grammars), every grammar goes
//! through the seven-overlay pipeline on a worker pool and a summary
//! throughput line is printed after the per-grammar reports.
//!
//! `--profile=json` prints exactly one JSON value on stdout (an object
//! for a single grammar, an array under `--batch`); all human-oriented
//! output moves to stderr so the result can be piped to a JSON consumer.
//!
//! Exit status: 0 on success, 1 on any syntax/semantic/analysis error
//! (reported the way the failing overlay saw it). A `--profile=json`
//! batch where *every* grammar fails — in the driver or in its profiled
//! evaluation — also exits 1, so pipelines cannot mistake a fully
//! failed sweep for a quiet success.

use linguist_ag::analysis::Config;
use linguist_ag::lint::LintConfig;
use linguist_ag::passes::{Direction, PassConfig};
use linguist_ag::subsumption::GroupMode;
use linguist_codegen::rustgen;
use linguist_engine::EngineKind;
use linguist_eval::aptfile::TempAptDir;
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{Backing, RetryPolicy};
use linguist_frontend::check::check_source;
use linguist_frontend::driver::{run, run_batch, DriverOptions, DriverOutput, TargetOpt};
use linguist_frontend::report::{ProfileReport, RecoveryOpts, DEFAULT_TREE_BUDGET};
use linguist_serve::client::Client;
use linguist_serve::load::{run_load, LoadConfig};
use linguist_serve::router::{Router, RouterConfig, ShardAddr};
use linguist_serve::server::{Server, ServerConfig};
use linguist_support::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileFmt {
    Text,
    Json,
}

struct Cli {
    paths: Vec<String>,
    listing: bool,
    stats: bool,
    timings: bool,
    profile: Option<ProfileFmt>,
    emit: Option<TargetOpt>,
    first: Direction,
    optimize: bool,
    no_subsumption: bool,
    coalesce: bool,
    batch: bool,
    jobs: Option<usize>,
    retries: u32,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    engine: EngineKind,
}

impl Cli {
    /// Recovery options for the `index`-th grammar: under `--batch` each
    /// job checkpoints into its own subdirectory so manifests never
    /// collide.
    fn recovery(&self, index: usize) -> RecoveryOpts {
        let checkpoint_dir = self.checkpoint_dir.as_ref().map(|base| {
            if self.batch {
                base.join(format!("job{}", index))
            } else {
                base.clone()
            }
        });
        RecoveryOpts {
            retry: if self.retries > 0 {
                RetryPolicy::retries(self.retries)
            } else {
                RetryPolicy::default()
            },
            checkpoint_dir,
            resume: self.resume,
            // Batch jobs run concurrently: keep each job's intermediate
            // APT in its own owned RAM store (shared-nothing) instead of
            // contending on temp files. A single grammar keeps the
            // paper-faithful disk profile.
            backing: if self.batch {
                Backing::Memory
            } else {
                Backing::Disk
            },
            engine: self.engine,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: linguist GRAMMAR.lg [GRAMMAR2.lg ...] [--listing] [--stats] [--timings] \
         [--profile[=text|json]] [--emit pascal|rust] [--first-pass rl|lr] \
         [--opt[=on|off]] [--no-subsumption] [--coalesce] [--batch] [--jobs N] [--retries N] \
         [--checkpoint-dir DIR] [--resume] [--engine interpreted|aot|jit]\n\
         \x20      linguist check GRAMMAR.lg [--format text|json] [--deny-warnings] \
         [--first-pass rl|lr] [--opt[=on|off]] [--no-subsumption] [--coalesce]\n\
         \x20      linguist codegen GRAMMAR.lg [--out DIR] [--first-pass rl|lr] \
         [--opt[=on|off]] [--no-subsumption] [--coalesce]\n\
         \x20      linguist serve [--socket PATH] [--tcp ADDR] [--workers N] [--queue N] \
         [--cache N] [--deadline-ms N] [--max-frame-bytes N] [--idle-timeout-ms N] \
         [--engine interpreted|aot|jit] [--opt[=on|off]]\n\
         \x20      linguist router (--socket PATH | --tcp ADDR) --shard SPEC [--shard ...] \
         [--health-interval-ms N] [--probe-timeout-ms N] [--attempt-timeout-ms N] \
         [--max-attempts N] [--breaker-threshold N] [--breaker-cooldown-ms N]\n\
         \x20      linguist load (--socket PATH | --tcp ADDR) [--rate R] [--duration-ms N] \
         [--grammars N] [--budget N] [--senders N] [--deadline-ms N] [--retries N] [--json]\n\
         \x20      linguist client (--socket PATH | --tcp ADDR) [--timeout-ms N] [--retries N] \
         (load FILE [--scanner S] [--name N] | translate GRAMMAR \
         (--input TEXT | --input-file FILE | --budget N) [--deadline-ms N] | \
         check GRAMMAR | ping | stats | shutdown | raw JSON)"
    );
    std::process::exit(2);
}

fn parse_args(args: Vec<String>) -> Cli {
    let mut cli = Cli {
        paths: Vec::new(),
        listing: false,
        stats: false,
        timings: false,
        profile: None,
        emit: None,
        first: Direction::RightToLeft,
        optimize: true,
        no_subsumption: false,
        coalesce: false,
        batch: false,
        jobs: None,
        retries: 0,
        checkpoint_dir: None,
        resume: false,
        engine: EngineKind::Interpreted,
    };
    let mut args = args.into_iter().peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listing" => cli.listing = true,
            "--stats" => cli.stats = true,
            "--timings" => cli.timings = true,
            // Accept both `--profile=json` and `--profile json`.
            "--profile" | "--profile=text" => {
                cli.profile = Some(ProfileFmt::Text);
                if a == "--profile" {
                    match args.peek().map(String::as_str) {
                        Some("json") => {
                            cli.profile = Some(ProfileFmt::Json);
                            args.next();
                        }
                        Some("text") => {
                            args.next();
                        }
                        _ => {}
                    }
                }
            }
            "--profile=json" => cli.profile = Some(ProfileFmt::Json),
            "--opt" | "--opt=on" => cli.optimize = true,
            "--opt=off" => cli.optimize = false,
            "--no-subsumption" => cli.no_subsumption = true,
            "--coalesce" => cli.coalesce = true,
            "--batch" => cli.batch = true,
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cli.jobs = Some(n),
                _ => usage(),
            },
            "--retries" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => cli.retries = n,
                None => usage(),
            },
            "--checkpoint-dir" => match args.next() {
                Some(dir) if !dir.starts_with('-') => cli.checkpoint_dir = Some(dir.into()),
                _ => usage(),
            },
            "--resume" => cli.resume = true,
            "--emit" => match args.next().as_deref() {
                Some("pascal") => cli.emit = Some(TargetOpt::Pascal),
                Some("rust") => cli.emit = Some(TargetOpt::Rust),
                _ => usage(),
            },
            "--first-pass" => match args.next().as_deref() {
                Some("rl") => cli.first = Direction::RightToLeft,
                Some("lr") => cli.first = Direction::LeftToRight,
                _ => usage(),
            },
            "--engine" => match args.next().as_deref().and_then(EngineKind::parse) {
                Some(kind) => cli.engine = kind,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if !a.starts_with('-') => cli.paths.push(a),
            _ => usage(),
        }
    }
    if cli.paths.is_empty() {
        usage();
    }
    if cli.paths.len() > 1 {
        cli.batch = true;
    }
    if cli.resume && cli.checkpoint_dir.is_none() {
        eprintln!("linguist: --resume requires --checkpoint-dir");
        usage();
    }
    if !cli.listing && !cli.timings && cli.emit.is_none() && cli.profile.is_none() {
        cli.stats = true;
    }
    cli
}

fn report(cli: &Cli, path: &str, index: usize, out: &DriverOutput, heading: bool) {
    if heading {
        println!("== {} ==", path);
    }
    if cli.stats {
        println!("{}", out.stats);
        let sub = out.analysis.subsumption.stats(&out.analysis.grammar);
        println!(
            "static subsumption:   {} attrs static, {}/{} copy-rules subsumed",
            sub.static_attrs, sub.subsumed_rules, sub.copy_rules
        );
    }
    if cli.timings {
        println!("{}", out.timings);
    }
    if cli.listing {
        println!("{}", out.listing);
    }
    if cli.emit.is_some() {
        print!("{}", out.generated.full_source());
    }
    if cli.profile == Some(ProfileFmt::Text) {
        let r = ProfileReport::collect_with(
            path,
            &out.analysis,
            &Funcs::standard(),
            DEFAULT_TREE_BUDGET,
            &cli.recovery(index),
        );
        print!("{}", r.render_text());
    }
}

/// `linguist check ...`: run the static-analysis lints over one grammar.
fn check_main(args: Vec<String>) -> ExitCode {
    let mut path = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut first = Direction::RightToLeft;
    let mut optimize = true;
    let mut no_subsumption = false;
    let mut coalesce = false;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            "--format=text" => json = false,
            "--format=json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--first-pass" => match args.next().as_deref() {
                Some("rl") => first = Direction::RightToLeft,
                Some("lr") => first = Direction::LeftToRight,
                _ => usage(),
            },
            "--opt" | "--opt=on" => optimize = true,
            "--opt=off" => optimize = false,
            "--no-subsumption" => no_subsumption = true,
            "--coalesce" => coalesce = true,
            "--help" | "-h" => usage(),
            _ if !a.starts_with('-') && path.is_none() => path = Some(a),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("linguist check: cannot read {}: {}", path, e);
            return ExitCode::FAILURE;
        }
    };
    let config = Config {
        pass: PassConfig {
            first_direction: first,
            max_passes: 32,
        },
        optimize,
        disable_subsumption: no_subsumption,
        group_mode: if coalesce {
            GroupMode::CoalesceCopies
        } else {
            GroupMode::SameName
        },
        ..Config::default()
    };
    let report = check_source(&source, &config, &LintConfig::default());
    if json {
        println!("{}", report.to_json(&path));
    } else {
        print!("{}", report.render_text(&path));
    }
    let pass = if deny_warnings {
        report.clean_denying_warnings()
    } else {
        report.clean()
    };
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `linguist codegen ...`: write a grammar's generated evaluator crate
/// to disk — a standalone Rust binary crate (no dependencies) that reads
/// a boundary-0 APT file on stdin and writes the root's synthesized
/// attributes on stdout. This is exactly the source the compiled engine
/// builds, so `cargo build` in the output directory yields the same
/// evaluator the `--engine jit` cache would.
fn codegen_main(args: Vec<String>) -> ExitCode {
    let mut path = None;
    let mut out: Option<PathBuf> = None;
    let mut first = Direction::RightToLeft;
    let mut optimize = true;
    let mut no_subsumption = false;
    let mut coalesce = false;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(d) if !d.starts_with('-') => out = Some(d.into()),
                _ => usage(),
            },
            "--first-pass" => match args.next().as_deref() {
                Some("rl") => first = Direction::RightToLeft,
                Some("lr") => first = Direction::LeftToRight,
                _ => usage(),
            },
            "--opt" | "--opt=on" => optimize = true,
            "--opt=off" => optimize = false,
            "--no-subsumption" => no_subsumption = true,
            "--coalesce" => coalesce = true,
            "--help" | "-h" => usage(),
            _ if !a.starts_with('-') && path.is_none() => path = Some(a),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("linguist codegen: cannot read {}: {}", path, e);
            return ExitCode::FAILURE;
        }
    };
    let config = Config {
        pass: PassConfig {
            first_direction: first,
            max_passes: 32,
        },
        optimize,
        disable_subsumption: no_subsumption,
        group_mode: if coalesce {
            GroupMode::CoalesceCopies
        } else {
            GroupMode::SameName
        },
        ..Config::default()
    };
    let analysis = match linguist_frontend::driver::analyze(&source, &config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("linguist codegen: {}: {}", path, e);
            return ExitCode::FAILURE;
        }
    };
    // Crate name and default output directory from the grammar file stem
    // (sanitized to a valid package name).
    let stem = Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("grammar")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect::<String>();
    let crate_name = format!("{}-evaluator", stem.trim_matches('-'));
    let out_dir = out.unwrap_or_else(|| PathBuf::from(&crate_name));
    let files = rustgen::crate_files(&analysis, &crate_name, true);
    for (rel, content) in &files {
        let target = out_dir.join(rel);
        if let Some(parent) = target.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!(
                    "linguist codegen: cannot create {}: {}",
                    parent.display(),
                    e
                );
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&target, content) {
            eprintln!("linguist codegen: cannot write {}: {}", target.display(), e);
            return ExitCode::FAILURE;
        }
    }
    // With the optimizer on, serialize the per-production change-impact
    // closures next to the crate: which attributes can change when a
    // subtree rooted at each production is re-translated — the substrate
    // incremental consumers key invalidation off.
    let mut extra_files: Vec<PathBuf> = Vec::new();
    if let Some(report) = &analysis.opt {
        let g = &analysis.grammar;
        let impact = Json::Arr(
            report
                .impact
                .iter()
                .enumerate()
                .map(|(p, closure)| {
                    let affected: Vec<Json> = closure
                        .affected
                        .iter()
                        .map(|&a| {
                            Json::str(&format!(
                                "{}.{}",
                                g.symbol_name(g.attr(a).symbol),
                                g.attr_name(a)
                            ))
                        })
                        .collect();
                    Json::Obj(vec![
                        ("production".to_string(), Json::int(p as i64)),
                        (
                            "lhs".to_string(),
                            Json::str(
                                g.symbol_name(g.production(linguist_ag::ProdId(p as u32)).lhs),
                            ),
                        ),
                        ("affected".to_string(), Json::Arr(affected)),
                    ])
                })
                .collect(),
        );
        let target = out_dir.join("impact.json");
        if let Err(e) = std::fs::write(&target, format!("{}\n", impact)) {
            eprintln!("linguist codegen: cannot write {}: {}", target.display(), e);
            return ExitCode::FAILURE;
        }
        extra_files.push(target);
    }
    let evaluator = rustgen::rust_source(&analysis);
    println!(
        "wrote {} file(s) to {} ({} evaluator lines, content hash {})",
        files.len() + extra_files.len(),
        out_dir.display(),
        evaluator.lines().count(),
        rustgen::content_hash(evaluator.as_bytes()),
    );
    for (rel, _content) in &files {
        println!("  {}", out_dir.join(rel).display());
    }
    for target in &extra_files {
        println!("  {}", target.display());
    }
    ExitCode::SUCCESS
}

/// `linguist serve ...`: run the resident translation service.
fn serve_main(args: Vec<String>) -> ExitCode {
    let mut cfg = ServerConfig::default();
    // The CLI defaults the optimizer ON (the library default is off so
    // the paper's figures stay reproducible programmatically).
    cfg.config.optimize = true;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => match args.next() {
                Some(p) if !p.starts_with('-') => cfg.unix_path = Some(p.into()),
                _ => usage(),
            },
            "--tcp" => match args.next() {
                Some(addr) if !addr.starts_with('-') => cfg.tcp_addr = Some(addr),
                _ => usage(),
            },
            "--workers" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.workers = n,
                _ => usage(),
            },
            "--queue" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.queue_capacity = n,
                _ => usage(),
            },
            "--cache" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.cache_capacity = n,
                _ => usage(),
            },
            "--deadline-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => cfg.default_deadline = Some(Duration::from_millis(n)),
                _ => usage(),
            },
            "--max-frame-bytes" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.max_frame_len = n,
                _ => usage(),
            },
            "--idle-timeout-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(0) => cfg.idle_timeout = None,
                Some(n) => cfg.idle_timeout = Some(Duration::from_millis(n)),
                _ => usage(),
            },
            "--engine" => match args.next().as_deref().and_then(EngineKind::parse) {
                Some(kind) => cfg.engine.kind = kind,
                None => usage(),
            },
            "--opt" | "--opt=on" => cfg.config.optimize = true,
            "--opt=off" => cfg.config.optimize = false,
            _ => usage(),
        }
    }
    if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
        eprintln!("linguist serve: give --socket PATH and/or --tcp ADDR");
        return ExitCode::from(2);
    }
    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("linguist serve: {}", e);
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = handle.unix_path() {
        eprintln!("linguist serve: listening on unix {}", p.display());
    }
    if let Some(a) = handle.tcp_addr() {
        eprintln!("linguist serve: listening on tcp {}", a);
    }
    watch_for_termination("linguist serve", {
        let state = Arc::clone(handle.state());
        move || state.begin_drain()
    });
    handle.wait();
    eprintln!("linguist serve: shut down");
    ExitCode::SUCCESS
}

/// Spawn the SIGTERM/SIGINT watcher: when a termination signal lands,
/// log once and start draining (stop accepting, finish in-flight work).
/// The main thread is parked in `wait()` and unblocks when the drain
/// completes, so the process still exits 0.
fn watch_for_termination(who: &'static str, drain: impl FnOnce() + Send + 'static) {
    linguist_serve::signal::install_termination_handler();
    std::thread::Builder::new()
        .name("signal-watch".to_string())
        .spawn(move || {
            while !linguist_serve::signal::termination_requested() {
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("{}: termination signal, draining", who);
            drain();
        })
        .expect("spawn signal watcher");
}

/// `linguist router ...`: front a fleet of shards.
fn router_main(args: Vec<String>) -> ExitCode {
    let mut cfg = RouterConfig::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => match args.next() {
                Some(p) if !p.starts_with('-') => cfg.unix_path = Some(p.into()),
                _ => usage(),
            },
            "--tcp" => match args.next() {
                Some(addr) if !addr.starts_with('-') => cfg.tcp_addr = Some(addr),
                _ => usage(),
            },
            "--shard" => match args.next().as_deref().map(ShardAddr::parse) {
                Some(Ok(spec)) => cfg.shards.push(spec),
                Some(Err(e)) => {
                    eprintln!("linguist router: bad --shard: {}", e);
                    return ExitCode::from(2);
                }
                None => usage(),
            },
            "--health-interval-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.health_interval = Duration::from_millis(n),
                _ => usage(),
            },
            "--probe-timeout-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.probe_timeout = Duration::from_millis(n),
                _ => usage(),
            },
            "--attempt-timeout-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.attempt_timeout = Duration::from_millis(n),
                _ => usage(),
            },
            "--max-attempts" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.max_attempts = n,
                _ => usage(),
            },
            "--breaker-threshold" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => cfg.breaker_threshold = n,
                _ => usage(),
            },
            "--breaker-cooldown-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.breaker_cooldown = Duration::from_millis(n),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
        eprintln!("linguist router: give --socket PATH and/or --tcp ADDR");
        return ExitCode::from(2);
    }
    if cfg.shards.is_empty() {
        eprintln!("linguist router: give at least one --shard SPEC");
        return ExitCode::from(2);
    }
    let handle = match Router::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("linguist router: {}", e);
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = handle.unix_path() {
        eprintln!("linguist router: listening on unix {}", p.display());
    }
    if let Some(a) = handle.tcp_addr() {
        eprintln!("linguist router: listening on tcp {}", a);
    }
    for shard in handle.state().shards() {
        eprintln!("linguist router: shard {}", shard.addr_string());
    }
    watch_for_termination("linguist router", {
        let state = Arc::clone(handle.state());
        move || state.begin_drain()
    });
    handle.wait();
    eprintln!("linguist router: shut down");
    ExitCode::SUCCESS
}

/// `linguist load ...`: one open-loop load run.
fn load_main(args: Vec<String>) -> ExitCode {
    let mut cfg = LoadConfig::default();
    let mut target = None;
    let mut json = false;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => match args.next() {
                Some(p) if !p.starts_with('-') => target = Some(ShardAddr::Unix(p.into())),
                _ => usage(),
            },
            "--tcp" => match args.next() {
                Some(addr) if !addr.starts_with('-') => target = Some(ShardAddr::Tcp(addr)),
                _ => usage(),
            },
            "--rate" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => cfg.rate = r,
                _ => usage(),
            },
            "--duration-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.duration = Duration::from_millis(n),
                _ => usage(),
            },
            "--grammars" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.grammars = n,
                _ => usage(),
            },
            "--budget" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.budget = n,
                _ => usage(),
            },
            "--senders" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.senders = n,
                _ => usage(),
            },
            "--deadline-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => cfg.deadline_ms = Some(n),
                _ => usage(),
            },
            "--retries" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => cfg.retries = n,
                _ => usage(),
            },
            "--json" => json = true,
            _ => usage(),
        }
    }
    cfg.target = target.unwrap_or_else(|| {
        eprintln!("linguist load: give --socket PATH or --tcp ADDR");
        std::process::exit(2);
    });
    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("linguist load: {}", e);
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        let ms = |q: Option<Duration>| {
            q.map_or("-".to_string(), |d| format!("{:.2}", d.as_secs_f64() * 1e3))
        };
        println!(
            "offered {:.0} rps for {:?}: {}/{} ok ({:.2}% success), \
             p50 {} ms, p99 {} ms, p999 {} ms, achieved {:.0} rps",
            report.offered_rps,
            cfg.duration,
            report.ok,
            report.sent,
            report.success_rate() * 100.0,
            ms(report.p50),
            ms(report.p99),
            ms(report.p999),
            report.achieved_rps(),
        );
        for (kind, n) in &report.failures_by_kind {
            println!("  failures[{}] = {}", kind, n);
        }
    }
    if report.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Exit codes for `linguist client`, so scripts can tell failure modes
/// apart without parsing stderr.
mod client_exit {
    /// The reply was `ok:false` (a typed server error).
    pub const SERVER_ERROR: u8 = 1;
    /// Could not connect, or the connection failed mid-request.
    pub const CONNECT: u8 = 3;
    /// The daemon accepted the request but no reply arrived in time.
    pub const TIMEOUT: u8 = 4;
}

/// `linguist client ...`: one request against a running daemon.
fn client_main(args: Vec<String>) -> ExitCode {
    let mut target: Option<ShardAddr> = None;
    let mut timeout: Option<Duration> = None;
    let mut retries = 0usize;
    let mut args = args.into_iter().peekable();
    // Options first, then the command word and its own arguments.
    while let Some(a) = args.peek().map(String::as_str) {
        match a {
            "--socket" => {
                args.next();
                match args.next() {
                    Some(p) if !p.starts_with('-') => target = Some(ShardAddr::Unix(p.into())),
                    _ => usage(),
                }
            }
            "--tcp" => {
                args.next();
                match args.next() {
                    Some(addr) if !addr.starts_with('-') => target = Some(ShardAddr::Tcp(addr)),
                    _ => usage(),
                }
            }
            "--timeout-ms" => {
                args.next();
                match args.next().and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => timeout = Some(Duration::from_millis(n)),
                    _ => usage(),
                }
            }
            "--retries" => {
                args.next();
                match args.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => retries = n,
                    None => usage(),
                }
            }
            _ => break,
        }
    }
    let target = target.unwrap_or_else(|| usage());
    let rest: Vec<String> = args.collect();
    // Build the request up front so every retry resends the same JSON.
    let request = match rest.first().map(String::as_str) {
        Some("load") => {
            let mut file = None;
            let mut scanner = None;
            let mut name = None;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--scanner" => scanner = it.next().cloned(),
                    "--name" => name = it.next().cloned(),
                    _ if !a.starts_with('-') && file.is_none() => file = Some(a.clone()),
                    _ => usage(),
                }
            }
            let file = file.unwrap_or_else(|| usage());
            let source = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("linguist client: cannot read {}: {}", file, e);
                    return ExitCode::FAILURE;
                }
            };
            let mut obj = vec![
                ("op".to_string(), Json::str("load_grammar")),
                ("source".to_string(), Json::str(&source)),
            ];
            if let Some(s) = scanner {
                obj.push(("scanner".to_string(), Json::str(&s)));
            }
            if let Some(n) = name {
                obj.push(("name".to_string(), Json::str(&n)));
            }
            Json::Obj(obj)
        }
        Some("translate") => {
            let grammar = match rest.get(1) {
                Some(g) if !g.starts_with('-') => g.clone(),
                _ => usage(),
            };
            let mut input = None;
            let mut budget = None;
            let mut deadline = None;
            let mut it = rest[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--input" => input = it.next().cloned(),
                    "--input-file" => match it.next().map(std::fs::read_to_string) {
                        Some(Ok(text)) => input = Some(text),
                        _ => usage(),
                    },
                    "--budget" => budget = it.next().and_then(|n| n.parse::<usize>().ok()),
                    "--deadline-ms" => deadline = it.next().and_then(|n| n.parse::<u64>().ok()),
                    _ => usage(),
                }
            }
            let mut obj = vec![
                ("op".to_string(), Json::str("translate")),
                ("grammar".to_string(), Json::str(&grammar)),
            ];
            match (input, budget) {
                (Some(text), None) => obj.push(("input".to_string(), Json::str(&text))),
                (None, Some(n)) => obj.push(("budget".to_string(), Json::int(n as i64))),
                _ => usage(),
            }
            if let Some(d) = deadline {
                obj.push(("deadline_ms".to_string(), Json::int(d as i64)));
            }
            Json::Obj(obj)
        }
        Some("check") => {
            let grammar = match rest.get(1) {
                Some(g) if !g.starts_with('-') => g.clone(),
                _ => usage(),
            };
            Json::Obj(vec![
                ("op".to_string(), Json::str("check")),
                ("grammar".to_string(), Json::str(&grammar)),
            ])
        }
        Some("ping") => Json::Obj(vec![("op".to_string(), Json::str("ping"))]),
        Some("stats") => Json::Obj(vec![("op".to_string(), Json::str("stats"))]),
        Some("shutdown") => Json::Obj(vec![("op".to_string(), Json::str("shutdown"))]),
        Some("raw") => match rest.get(1) {
            Some(line) => match Json::parse(line) {
                Ok(req) => req,
                Err(e) => {
                    eprintln!("linguist client: request is not JSON: {}", e);
                    return ExitCode::FAILURE;
                }
            },
            None => usage(),
        },
        _ => usage(),
    };
    // Each attempt gets a fresh connection: after a transport failure
    // the old socket is unusable, and after a transient typed error a
    // reconnect lets a router re-route around the refusing shard.
    let mut last: (u8, String) = (client_exit::CONNECT, "no attempt made".to_string());
    for attempt in 0..=retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(10 << (attempt - 1).min(5)));
            eprintln!(
                "linguist client: retrying ({}/{}) after: {}",
                attempt, retries, last.1
            );
        }
        let connected = match &target {
            ShardAddr::Unix(p) => Client::connect_unix(p),
            ShardAddr::Tcp(a) => Client::connect_tcp(a.as_str()),
        };
        let mut client = match connected {
            Ok(c) => c,
            Err(e) => {
                let diag = if e.kind() == std::io::ErrorKind::ConnectionRefused {
                    format!(
                        "connection refused at {} (daemon not running?): {}",
                        target, e
                    )
                } else {
                    format!("cannot connect to {}: {}", target, e)
                };
                last = (client_exit::CONNECT, diag);
                continue;
            }
        };
        if let Some(t) = timeout {
            if let Err(e) = client.set_timeouts(Some(t)) {
                eprintln!("linguist client: cannot arm timeout: {}", e);
                return ExitCode::FAILURE;
            }
        }
        match client.roundtrip(&request) {
            Ok(reply) => {
                let kind = reply
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .unwrap_or("");
                if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                    println!("{}", reply);
                    return ExitCode::SUCCESS;
                }
                if attempt < retries && linguist_serve::proto::retryable_kind(kind) {
                    last = (
                        client_exit::SERVER_ERROR,
                        format!("transient server error `{}`", kind),
                    );
                    continue;
                }
                println!("{}", reply);
                eprintln!("linguist client: server error `{}`", kind);
                return ExitCode::from(client_exit::SERVER_ERROR);
            }
            Err(e) => {
                let timed_out = matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                );
                last = if timed_out {
                    (
                        client_exit::TIMEOUT,
                        format!(
                            "no reply within {:?} from {}: {}",
                            timeout.unwrap_or_default(),
                            target,
                            e
                        ),
                    )
                } else {
                    (
                        client_exit::CONNECT,
                        format!("connection to {} failed mid-request: {}", target, e),
                    )
                };
            }
        }
    }
    eprintln!("linguist client: {}", last.1);
    ExitCode::from(last.0)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("check") => return check_main(argv.split_off(1)),
        Some("codegen") => return codegen_main(argv.split_off(1)),
        Some("serve") => return serve_main(argv.split_off(1)),
        Some("router") => return router_main(argv.split_off(1)),
        Some("load") => return load_main(argv.split_off(1)),
        Some("client") => return client_main(argv.split_off(1)),
        _ => {}
    }
    let cli = parse_args(argv);
    // Housekeeping: remove intermediate-APT scratch directories orphaned
    // by crashed runs (dead owning process, or older than a day).
    if let Ok(swept) = TempAptDir::sweep_stale(Duration::from_secs(24 * 60 * 60)) {
        if swept > 0 {
            eprintln!("linguist: swept {} stale APT scratch dir(s)", swept);
        }
    }
    let mut sources = Vec::with_capacity(cli.paths.len());
    for path in &cli.paths {
        match std::fs::read_to_string(path) {
            Ok(s) => sources.push(s),
            Err(e) => {
                eprintln!("linguist: cannot read {}: {}", path, e);
                return ExitCode::FAILURE;
            }
        }
    }
    let opts = DriverOptions {
        config: Config {
            pass: PassConfig {
                first_direction: cli.first,
                max_passes: 32,
            },
            optimize: cli.optimize,
            disable_subsumption: cli.no_subsumption,
            group_mode: if cli.coalesce {
                GroupMode::CoalesceCopies
            } else {
                GroupMode::SameName
            },
            ..Config::default()
        },
        target: cli.emit,
        engine: cli.engine,
    };

    if !cli.batch {
        let out = match run(&sources[0], &opts) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("linguist: {}: {}", cli.paths[0], e);
                return ExitCode::FAILURE;
            }
        };
        report(&cli, &cli.paths[0], 0, &out, false);
        if cli.profile == Some(ProfileFmt::Json) {
            let r = ProfileReport::collect_with(
                &cli.paths[0],
                &out.analysis,
                &Funcs::standard(),
                DEFAULT_TREE_BUDGET,
                &cli.recovery(0),
            );
            println!("{}", r.render_json());
        }
        return ExitCode::SUCCESS;
    }

    let workers = cli
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let (results, stats) = run_batch(&refs, &opts, workers);
    let mut ok = true;
    // Jobs that produced no usable result: driver failures and — under
    // --profile=json, where the profile IS the product — profiled
    // evaluations that errored. A batch where every job lands here must
    // not exit 0.
    let mut failed_jobs = 0usize;
    let mut json_reports = Vec::new();
    // Anything report() would print belongs to the human; in JSON mode
    // only the JSON value may reach stdout.
    let human = cli.stats
        || cli.timings
        || cli.listing
        || cli.emit.is_some()
        || cli.profile == Some(ProfileFmt::Text);
    for (i, (path, result)) in cli.paths.iter().zip(&results).enumerate() {
        match result {
            Ok(out) => {
                if human {
                    report(&cli, path, i, out, true);
                }
                if cli.profile == Some(ProfileFmt::Json) {
                    let r = ProfileReport::collect_with(
                        path,
                        &out.analysis,
                        &Funcs::standard(),
                        DEFAULT_TREE_BUDGET,
                        &cli.recovery(i),
                    );
                    if r.eval_error.is_some() {
                        failed_jobs += 1;
                    }
                    json_reports.push(r.render_json());
                }
            }
            Err(e) => {
                ok = false;
                failed_jobs += 1;
                eprintln!("linguist: {}: {}", path, e);
            }
        }
    }
    // In JSON mode the batch summary is human-oriented: keep stdout
    // machine-clean by sending it to stderr.
    let summary = format!(
        "batch: {} grammar(s), {} failed ({} panicked), {} worker(s), {:?} wall, {:.1} grammars/sec",
        stats.jobs,
        stats.failed,
        stats.panicked,
        stats.workers,
        stats.wall,
        stats.jobs_per_sec()
    );
    if cli.profile == Some(ProfileFmt::Json) {
        println!("[{}]", json_reports.join(","));
        eprintln!("{}", summary);
    } else {
        println!("{}", summary);
    }
    if failed_jobs == cli.paths.len() {
        // Every job failed: never a success, whatever mode printed it.
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
