//! The compiled-grammar session cache.
//!
//! The frontend pipeline (overlays 1–4: parse, lower, implicit copies,
//! evaluability) is pure per grammar *text*, so a resident service
//! should pay it exactly once per distinct grammar and serve every
//! later request from the compiled form. [`GrammarStore`] is that
//! cache:
//!
//! * **keyed by content hash** — FNV-1a 64 over the source text plus
//!   the scanner binding, so "the same grammar again" is decided by
//!   bytes, not by file names or client identity;
//! * **LRU-bounded** — at most `capacity` compiled grammars stay
//!   resident; eviction is safe because entries are `Arc` snapshots
//!   (an in-flight request keeps its grammar alive after eviction);
//! * **single-flight** — concurrent misses on the same key block on
//!   one compile instead of burning a core each; the
//!   [`analyses`](StoreStats::analyses) counter therefore counts real
//!   frontend runs, which is what the warm-path tests assert against;
//! * **concurrent** — lookups clone an `Arc` under a short-held mutex;
//!   compilation itself runs with the lock released.

use linguist_ag::analysis::{Analysis, Config};
use linguist_ag::lint::SpanMap;
use linguist_engine::{Engine as ExecEngine, EngineKind, PreparedEngine};
use linguist_frontend::driver::{analyze_with_spans, DriverError};
use linguist_frontend::translate::{TranslateError, Translator};
use linguist_lexgen::Scanner;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The workspace's stock content hash (shared with the codegen artifact
/// keys and the router's ring — see `linguist_support::fnv`).
pub(crate) use linguist_support::fnv::hash_chunks as fnv1a;

/// Cache key for a grammar: hash of the source text and the scanner
/// binding, rendered as 16 hex digits (what the wire protocol calls the
/// *grammar handle*).
pub fn grammar_key(source: &str, scanner: Option<&str>) -> String {
    linguist_support::fnv::hex16(fnv1a(&[
        source.as_bytes(),
        b"\0",
        scanner.unwrap_or("").as_bytes(),
    ]))
}

/// How a compiled grammar can be exercised.
enum Engine {
    /// Analysis only: requests evaluate synthetic trees grown from the
    /// grammar (the `budget` form of `Translate`).
    Synthetic(Box<Analysis>),
    /// Full translator: a scanner was bound at load time, so requests
    /// may also carry concrete `input` text to scan, parse and evaluate.
    Full(Box<Translator>),
}

/// One resident compiled grammar: the session-cache entry.
pub struct CompiledGrammar {
    /// The content-hash handle clients use to address this grammar.
    pub key: String,
    /// Display name (client-chosen at load, or the handle).
    pub name: String,
    /// Source lines, for stats.
    pub source_lines: usize,
    /// Wall-clock cost of the frontend run this entry amortizes.
    pub compile_time: Duration,
    /// Warm lookups served from this entry.
    hits: AtomicU64,
    engine: Engine,
    /// Source spans per dense id, captured at compile time so `check`
    /// requests against a cached grammar never re-run the frontend.
    spans: SpanMap,
    /// Compiled-engine route resolved at load time (AOT registry lookup
    /// or JIT build), cached alongside the analysis so warm requests pay
    /// zero preparation cost. `None` when the service runs interpreted.
    prepared: Option<PreparedEngine>,
}

impl CompiledGrammar {
    /// The analyzed grammar.
    pub fn analysis(&self) -> &Analysis {
        match &self.engine {
            Engine::Synthetic(a) => a,
            Engine::Full(t) => &t.analysis,
        }
    }

    /// Source spans for the grammar's dense ids (the lint layer's
    /// input).
    pub fn spans(&self) -> &SpanMap {
        &self.spans
    }

    /// The full translator, when a scanner was bound at load time.
    pub fn translator(&self) -> Option<&Translator> {
        match &self.engine {
            Engine::Synthetic(_) => None,
            Engine::Full(t) => Some(t),
        }
    }

    /// Alternating passes the evaluator needs.
    pub fn passes(&self) -> usize {
        self.analysis().passes.num_passes()
    }

    /// Warm lookups served from this entry so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The compiled-engine route resolved at load time, when the
    /// service runs a compiled engine.
    pub fn prepared(&self) -> Option<&PreparedEngine> {
        self.prepared.as_ref()
    }
}

impl fmt::Debug for CompiledGrammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledGrammar")
            .field("key", &self.key)
            .field("name", &self.name)
            .field("passes", &self.passes())
            .finish()
    }
}

/// A [`GrammarStore::load`] failure.
#[derive(Debug)]
pub enum LoadError {
    /// The frontend rejected the grammar (overlays 1–4).
    Compile(DriverError),
    /// The scanner could not be bound (unknown name, non-LALR CFG, or
    /// an unbound token kind).
    Bind(TranslateError),
    /// No bundled scanner has this name.
    UnknownScanner(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Compile(e) => write!(f, "{}", e),
            LoadError::Bind(e) => write!(f, "{}", e),
            LoadError::UnknownScanner(name) => {
                write!(f, "no bundled scanner is named `{}`", name)
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// The bundled scanner registry: scanner definitions cannot cross the
/// wire (they are code), so `LoadGrammar` refers to them by name.
pub fn bundled_scanner(name: &str) -> Option<Scanner> {
    match name {
        "calc" => Some(linguist_grammars::calc_scanner()),
        "block" => Some(linguist_grammars::block_scanner()),
        "knuth" => Some(linguist_grammars::knuth_scanner()),
        "pascal" => Some(linguist_grammars::pascal_scanner()),
        "meta" => Some(linguist_grammars::meta_scanner()),
        _ => None,
    }
}

/// Counter snapshot of a [`GrammarStore`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing under the key.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Frontend analysis runs actually performed — the number the
    /// warm-path acceptance test pins to 1 per distinct grammar.
    pub analyses: u64,
    /// Grammars resident right now.
    pub entries: usize,
    /// The LRU bound.
    pub capacity: usize,
    /// Optimizer effect, cumulative over every compile this store
    /// performed (all zero when the service runs with `--opt=off`):
    /// constant reads materialized as literals.
    pub opt_folded: u64,
    /// Dead attributes detached plus dead rules deleted.
    pub opt_eliminated: u64,
    /// Reads forwarded past copy chains.
    pub opt_collapsed: u64,
}

enum Slot {
    /// Another thread is compiling this key; wait on the condvar.
    Building,
    /// Compiled and resident.
    Ready(Arc<CompiledGrammar>),
}

struct Inner {
    slots: HashMap<String, Slot>,
    /// LRU order, least-recent first. Only `Ready` keys appear.
    order: Vec<String>,
}

impl Inner {
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

/// The session cache. See the module docs for the design.
pub struct GrammarStore {
    inner: Mutex<Inner>,
    built: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    analyses: AtomicU64,
    opt_folded: AtomicU64,
    opt_eliminated: AtomicU64,
    opt_collapsed: AtomicU64,
}

impl GrammarStore {
    /// A store holding at most `capacity` compiled grammars (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> GrammarStore {
        GrammarStore {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                order: Vec::new(),
            }),
            built: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            analyses: AtomicU64::new(0),
            opt_folded: AtomicU64::new(0),
            opt_eliminated: AtomicU64::new(0),
            opt_collapsed: AtomicU64::new(0),
        }
    }

    /// Look a grammar up by its handle. Counts a hit or a miss; a hit
    /// refreshes the entry's LRU position.
    pub fn get(&self, key: &str) -> Option<Arc<CompiledGrammar>> {
        let mut inner = self.inner.lock().expect("store poisoned");
        // A key mid-compile is not addressable by handle yet: the
        // loading client gets the handle only with the load reply.
        match inner.slots.get(key) {
            Some(Slot::Ready(g)) => {
                let g = g.clone();
                inner.touch(key);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                g.hits.fetch_add(1, Ordering::Relaxed);
                Some(g)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Get-or-compile: the service's `LoadGrammar` and by-source
    /// `Translate` entry point. Returns the compiled grammar and
    /// whether it was already resident (`true` = session-cache hit; the
    /// request paid zero analysis cost).
    ///
    /// Concurrent misses on one key are single-flighted: the first
    /// caller compiles with the store unlocked, later callers block
    /// until the slot is ready. A failed compile wakes the waiters,
    /// who observe the cleared slot and retry the compile themselves
    /// (failure is not cached — a transiently broken load should not
    /// poison the key).
    ///
    /// # Errors
    ///
    /// See [`LoadError`]. The store is unchanged on error.
    pub fn load(
        &self,
        source: &str,
        scanner: Option<&str>,
        name: Option<&str>,
        config: &Config,
    ) -> Result<(Arc<CompiledGrammar>, bool), LoadError> {
        self.load_with_engine(source, scanner, name, config, None)
    }

    /// [`load`](GrammarStore::load), resolving the grammar against an
    /// execution engine at compile time: the entry caches the prepared
    /// route (AOT function pointer or JIT artifact path) alongside the
    /// analysis, so warm translate requests pay zero engine preparation.
    /// Preparation shares the store's single-flight — concurrent misses
    /// on one key trigger at most one JIT build from this path (the
    /// engine's own build cache single-flights cross-grammar collisions).
    ///
    /// # Errors
    ///
    /// See [`LoadError`]. Engine preparation itself never fails a load —
    /// a grammar whose evaluator cannot be built degrades to the
    /// interpreter with the typed reason recorded in the entry.
    pub fn load_with_engine(
        &self,
        source: &str,
        scanner: Option<&str>,
        name: Option<&str>,
        config: &Config,
        exec: Option<&ExecEngine>,
    ) -> Result<(Arc<CompiledGrammar>, bool), LoadError> {
        let key = grammar_key(source, scanner);
        loop {
            {
                let mut inner = self.inner.lock().expect("store poisoned");
                match inner.slots.get(&key) {
                    Some(Slot::Ready(g)) => {
                        let g = g.clone();
                        inner.touch(&key);
                        drop(inner);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        g.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((g, true));
                    }
                    Some(Slot::Building) => {
                        // Someone else is compiling this key; wait for
                        // the slot to resolve, then loop to re-check.
                        let _unused = self.built.wait(inner).expect("store poisoned");
                        continue;
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        inner.slots.insert(key.clone(), Slot::Building);
                    }
                }
            }
            // This thread owns the compile for `key`; the lock is
            // released while the frontend runs.
            let built = self.compile(source, scanner, name, config, &key, exec);
            let mut inner = self.inner.lock().expect("store poisoned");
            match built {
                Ok(g) => {
                    let g = Arc::new(g);
                    inner.slots.insert(key.clone(), Slot::Ready(g.clone()));
                    inner.order.push(key.clone());
                    while inner.order.len() > self.capacity {
                        let victim = inner.order.remove(0);
                        inner.slots.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(inner);
                    self.built.notify_all();
                    return Ok((g, false));
                }
                Err(e) => {
                    inner.slots.remove(&key);
                    drop(inner);
                    self.built.notify_all();
                    return Err(e);
                }
            }
        }
    }

    fn compile(
        &self,
        source: &str,
        scanner: Option<&str>,
        name: Option<&str>,
        config: &Config,
        key: &str,
        exec: Option<&ExecEngine>,
    ) -> Result<CompiledGrammar, LoadError> {
        let started = Instant::now();
        self.analyses.fetch_add(1, Ordering::Relaxed);
        let (analysis, spans) = analyze_with_spans(source, config).map_err(LoadError::Compile)?;
        if let Some(report) = &analysis.opt {
            self.opt_folded
                .fetch_add(report.folded_uses as u64, Ordering::Relaxed);
            self.opt_eliminated.fetch_add(
                (report.eliminated_rules + report.eliminated_attrs) as u64,
                Ordering::Relaxed,
            );
            self.opt_collapsed
                .fetch_add(report.collapsed_copies as u64, Ordering::Relaxed);
        }
        // Resolve the compiled-engine route while the analysis is still
        // in hand (a JIT build happens here, inside the load's
        // single-flight, on the loading client's time).
        let prepared = exec
            .filter(|e| e.config().kind != EngineKind::Interpreted)
            .map(|e| e.prepare(&analysis));
        let engine = match scanner {
            Some(sn) => {
                let sc =
                    bundled_scanner(sn).ok_or_else(|| LoadError::UnknownScanner(sn.to_string()))?;
                Engine::Full(Box::new(
                    Translator::new(analysis, sc).map_err(LoadError::Bind)?,
                ))
            }
            None => Engine::Synthetic(Box::new(analysis)),
        };
        Ok(CompiledGrammar {
            key: key.to_string(),
            name: name.unwrap_or(key).to_string(),
            source_lines: source.lines().count(),
            compile_time: started.elapsed(),
            hits: AtomicU64::new(0),
            engine,
            spans,
            prepared,
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store poisoned");
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
            entries: inner.order.len(),
            capacity: self.capacity,
            opt_folded: self.opt_folded.load(Ordering::Relaxed),
            opt_eliminated: self.opt_eliminated.load(Ordering::Relaxed),
            opt_collapsed: self.opt_collapsed.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of every resident grammar, LRU order (least-recent
    /// first) — the `Stats` endpoint's per-grammar table.
    pub fn entries(&self) -> Vec<Arc<CompiledGrammar>> {
        let inner = self.inner.lock().expect("store poisoned");
        inner
            .order
            .iter()
            .filter_map(|k| match inner.slots.get(k) {
                Some(Slot::Ready(g)) => Some(g.clone()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Debug for GrammarStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GrammarStore({:?})", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
grammar Tiny ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
prod s0 = x :
  s0.V = x.OBJ ;
end
end
"#;

    fn variant(i: usize) -> String {
        // Content-hash keys: a comment suffices to make a new grammar.
        format!("{}\n# variant {}\n", TINY, i)
    }

    #[test]
    fn second_load_is_a_hit_with_no_reanalysis() {
        let store = GrammarStore::new(4);
        let cfg = Config::default();
        let (g1, cached1) = store.load(TINY, None, Some("tiny"), &cfg).unwrap();
        let (g2, cached2) = store.load(TINY, None, Some("tiny"), &cfg).unwrap();
        assert!(!cached1);
        assert!(cached2);
        assert!(Arc::ptr_eq(&g1, &g2));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.analyses), (1, 1, 1));
        assert_eq!(g1.hit_count(), 1);
        assert_eq!(g1.passes(), 1);
    }

    #[test]
    fn distinct_sources_and_scanner_bindings_get_distinct_keys() {
        assert_ne!(grammar_key(TINY, None), grammar_key(&variant(0), None));
        assert_ne!(grammar_key(TINY, None), grammar_key(TINY, Some("calc")));
        assert_eq!(grammar_key(TINY, None), grammar_key(TINY, None));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let store = GrammarStore::new(2);
        let cfg = Config::default();
        let (a, _) = store.load(&variant(1), None, None, &cfg).unwrap();
        store.load(&variant(2), None, None, &cfg).unwrap();
        // Touch 1 so 2 is now the LRU victim.
        assert!(store.get(&a.key).is_some());
        store.load(&variant(3), None, None, &cfg).unwrap();
        let s = store.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(store.get(&a.key).is_some(), "recently-used entry evicted");
        assert!(
            store.get(&grammar_key(&variant(2), None)).is_none(),
            "LRU entry survived"
        );
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let store = GrammarStore::new(2);
        let cfg = Config::default();
        assert!(store.load("grammar Broken", None, None, &cfg).is_err());
        let s = store.stats();
        assert_eq!(s.entries, 0);
        // The key stays loadable (a later, fixed load under the same
        // scanner binding is a fresh compile).
        assert!(store.load(TINY, None, None, &cfg).is_ok());
    }

    #[test]
    fn concurrent_loads_of_one_key_compile_once() {
        let store = GrammarStore::new(4);
        let cfg = Config::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    store.load(TINY, None, None, &cfg).unwrap();
                });
            }
        });
        let s = store.stats();
        assert_eq!(s.analyses, 1, "single-flight failed: {:?}", s);
        assert_eq!(s.hits + s.misses, 8);
    }

    #[test]
    fn unknown_scanner_is_rejected() {
        let store = GrammarStore::new(2);
        let err = store
            .load(TINY, Some("no-such-scanner"), None, &Config::default())
            .unwrap_err();
        assert!(matches!(err, LoadError::UnknownScanner(_)));
    }
}
