//! A small blocking client for the wire protocol.
//!
//! One [`Client`] is one connection: requests go out as single JSON
//! lines, replies come back one line each, in order. The helpers cover
//! the common requests; [`roundtrip`](Client::roundtrip) takes any
//! [`Json`] request for everything else (and for deliberately
//! malformed test traffic, use a raw socket).

use linguist_support::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(timeout),
            Conn::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_write_timeout(timeout),
            Conn::Tcp(s) => s.set_write_timeout(timeout),
        }
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl Client {
    /// Connect over the Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Client> {
        Client::wrap(Conn::Unix(UnixStream::connect(path)?))
    }

    /// Connect over TCP.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::wrap(Conn::Tcp(TcpStream::connect(addr)?))
    }

    fn wrap(conn: Conn) -> std::io::Result<Client> {
        let reader = BufReader::new(conn.try_clone()?);
        Ok(Client {
            reader,
            writer: conn,
        })
    }

    /// Bound every read and write on this connection. `None` restores
    /// blocking-forever. A reply that misses the deadline surfaces as
    /// a `WouldBlock`/`TimedOut` I/O error from the roundtrip.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_timeouts(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        // reader and writer are clones of one socket, but set the
        // option on both for clarity (and portability of the clone
        // semantics).
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// `ping`: cheapest possible liveness roundtrip.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn ping(&mut self) -> std::io::Result<Json> {
        self.roundtrip(&Json::Obj(vec![("op".to_string(), Json::str("ping"))]))
    }

    /// Send one request, read one reply.
    ///
    /// # Errors
    ///
    /// I/O failures; `UnexpectedEof` when the daemon closed the
    /// connection; `InvalidData` when the reply line is not JSON.
    pub fn roundtrip(&mut self, request: &Json) -> std::io::Result<Json> {
        writeln!(self.writer, "{}", request)?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without replying",
            ));
        }
        Json::parse(line.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("reply is not JSON: {}", e),
            )
        })
    }

    /// `load_grammar`: compile (or re-find) a grammar, returning the
    /// full reply (the handle is the `grammar` field).
    ///
    /// # Errors
    ///
    /// Transport failures only; a refused load is an `ok:false` reply.
    pub fn load_grammar(
        &mut self,
        source: &str,
        scanner: Option<&str>,
        name: Option<&str>,
    ) -> std::io::Result<Json> {
        let mut obj = vec![
            ("op".to_string(), Json::str("load_grammar")),
            ("source".to_string(), Json::str(source)),
        ];
        if let Some(s) = scanner {
            obj.push(("scanner".to_string(), Json::str(s)));
        }
        if let Some(n) = name {
            obj.push(("name".to_string(), Json::str(n)));
        }
        self.roundtrip(&Json::Obj(obj))
    }

    /// `translate` concrete input text against a loaded grammar handle.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn translate_input(
        &mut self,
        grammar: &str,
        input: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Json> {
        let mut obj = vec![
            ("op".to_string(), Json::str("translate")),
            ("grammar".to_string(), Json::str(grammar)),
            ("input".to_string(), Json::str(input)),
        ];
        if let Some(d) = deadline_ms {
            obj.push(("deadline_ms".to_string(), Json::int(d as i64)));
        }
        self.roundtrip(&Json::Obj(obj))
    }

    /// `translate` a synthetic derivation of roughly `budget` nodes.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn translate_budget(
        &mut self,
        grammar: &str,
        budget: usize,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Json> {
        let mut obj = vec![
            ("op".to_string(), Json::str("translate")),
            ("grammar".to_string(), Json::str(grammar)),
            ("budget".to_string(), Json::int(budget as i64)),
        ];
        if let Some(d) = deadline_ms {
            obj.push(("deadline_ms".to_string(), Json::int(d as i64)));
        }
        self.roundtrip(&Json::Obj(obj))
    }

    /// `check` a loaded grammar handle: run the `AG0xx` lints and
    /// return the coded-diagnostics reply.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn check(&mut self, grammar: &str) -> std::io::Result<Json> {
        self.roundtrip(&Json::Obj(vec![
            ("op".to_string(), Json::str("check")),
            ("grammar".to_string(), Json::str(grammar)),
        ]))
    }

    /// `check` inline grammar source (compiled through the session
    /// cache; a rejected grammar still gets located findings).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn check_source(&mut self, source: &str, scanner: Option<&str>) -> std::io::Result<Json> {
        let mut obj = vec![
            ("op".to_string(), Json::str("check")),
            ("source".to_string(), Json::str(source)),
        ];
        if let Some(s) = scanner {
            obj.push(("scanner".to_string(), Json::str(s)));
        }
        self.roundtrip(&Json::Obj(obj))
    }

    /// `stats`: the full counter document.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.roundtrip(&Json::Obj(vec![("op".to_string(), Json::str("stats"))]))
    }

    /// `shutdown`: ask the daemon to stop (the reply arrives before it
    /// does).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.roundtrip(&Json::Obj(vec![("op".to_string(), Json::str("shutdown"))]))
    }
}
