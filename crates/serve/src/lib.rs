//! A resident translation service for LINGUIST-86 translators.
//!
//! The paper's toolchain is batch: every run pays the full frontend
//! pipeline (parse, lower, implicit copies, evaluability analysis)
//! before a single input is translated. This crate keeps the compiled
//! grammar *resident* instead — a daemon that compiles each distinct
//! grammar once, caches the result, and answers translation requests
//! from the warm form:
//!
//! * [`store`] — the compiled-grammar session cache: content-hash
//!   keyed, LRU-bounded, single-flighted, shared via `Arc` snapshots.
//! * [`proto`] — the newline-delimited JSON wire protocol
//!   (`load_grammar`, `translate`, `translate_batch`, `stats`,
//!   `shutdown`) with typed error kinds that extend the evaluator's
//!   [`FailureKind`](linguist_eval::batch::FailureKind) taxonomy.
//! * [`pool`] — the admission-controlled worker pool: a bounded queue
//!   that rejects with `overloaded` instead of blocking, panic
//!   isolation per job, queue-wait-aware deadline budgeting.
//! * [`hist`] — a fixed-bucket latency histogram (p50/p99 without
//!   dependencies or unbounded memory).
//! * [`stats`] — the `Stats` endpoint's aggregation: request
//!   counters, the latency histogram, and every profiled evaluation's
//!   [`EvalMetrics`](linguist_eval::metrics::EvalMetrics) merged into
//!   one running pass-level traffic table.
//! * [`server`] — the daemon: Unix-domain socket and/or localhost TCP
//!   listeners, one thread per connection, jobs on the pool.
//! * [`client`] — a small blocking client used by the CLI and tests.
//!
//! A single daemon is one fault domain. The sharded tier splits it:
//!
//! * [`router`] — the front process: consistent-hash routing on the
//!   grammar content hash across health-checked shards, with capped
//!   exponential-backoff retry, per-shard circuit breakers, handle
//!   rehydration on failover, and warm-up replication into recovering
//!   shards.
//! * [`chaos`] — a fault-injecting TCP proxy (kill, freeze, drop,
//!   garble, delayed accept) plus seeded deterministic fault
//!   schedules, for proving the router's claims.
//! * [`load`] — an open-loop load generator that measures latency
//!   from *scheduled* arrival, immune to coordinated omission.
//! * [`signal`] — SIGTERM/SIGINT to "begin draining", without a libc
//!   dependency.

pub mod chaos;
pub mod client;
pub mod hist;
pub mod load;
pub mod pool;
pub mod proto;
pub mod router;
pub mod server;
pub mod signal;
pub mod stats;
pub mod store;

pub use chaos::{ChaosProxy, ChaosSchedule, Fault};
pub use client::Client;
pub use hist::LatencyHistogram;
pub use load::{run_load, LoadConfig, LoadReport};
pub use pool::{PoolStats, SubmitError, WorkerPool};
pub use proto::{FrameError, FrameReader, GrammarRef, Request, Work};
pub use router::{Router, RouterConfig, RouterHandle, RouterState, ShardAddr};
pub use server::{Server, ServerConfig, ServerHandle, ServiceState};
pub use stats::ServiceMetrics;
pub use store::{grammar_key, CompiledGrammar, GrammarStore, LoadError, StoreStats};
