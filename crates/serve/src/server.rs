//! The daemon: listeners, connection loop, and request dispatch.
//!
//! [`Server::start`] binds a Unix-domain socket and/or a localhost TCP
//! listener and returns a [`ServerHandle`]; the daemon then runs until
//! a `shutdown` request (or [`ServerHandle::shutdown`]) stops it.
//!
//! The threading model keeps the slow and the fast paths apart:
//!
//! * one **acceptor** thread per listener, blocked in `accept`;
//! * one **connection** thread per client, which parses request lines
//!   and answers `load_grammar` / `stats` / `shutdown` inline —
//!   grammar compilation runs here, on the loading client's time,
//!   single-flighted by the [`GrammarStore`];
//! * the fixed **worker pool**, which runs every `translate` /
//!   `translate_batch` job. Admission control happens at submit time:
//!   a full queue is a typed `overloaded` reply, never a blocked
//!   connection.
//!
//! Per-request deadlines are budgeted end to end: the job's closure is
//! told how long it waited in the queue, and a job that is already
//! past its deadline when a worker picks it up replies `deadline`
//! without evaluating. The remaining budget is handed to the
//! evaluator's own cooperative [`EvalOptions::deadline`] check.

use linguist_ag::analysis::Config;
use linguist_ag::lint::{run_lints, Finding, LintConfig};
use linguist_ag::passes::Direction;
use linguist_engine::{Engine as ExecEngine, EngineConfig, EngineKind};
use linguist_eval::funcs::Funcs;
use linguist_eval::machine::{evaluate, Backing, EvalOptions, Evaluation, Strategy};
use linguist_eval::tree::PTree;
use linguist_frontend::check::{check_source, CheckReport};
use linguist_frontend::report::synthesize_tree;
use linguist_frontend::translate::standard_intrinsics;
use linguist_support::intern::NameTable;
use linguist_support::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::pool::{PoolStats, SubmitError, WorkerPool};
use crate::proto::{
    error_reply, error_reply_with, eval_error_kind, kind, load_error_detail, load_error_kind,
    ok_reply, translate_error_kind, FrameError, FrameReader, GrammarRef, Request, Work,
    DEFAULT_MAX_FRAME_LEN,
};
use crate::stats::ServiceMetrics;
use crate::store::{CompiledGrammar, GrammarStore, LoadError, StoreStats};

/// How to run the daemon.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind a Unix-domain socket here (a stale socket file is removed).
    pub unix_path: Option<PathBuf>,
    /// Bind a TCP listener here (e.g. `127.0.0.1:0` for an ephemeral
    /// port; keep it loopback — the protocol has no authentication).
    pub tcp_addr: Option<String>,
    /// Worker threads for translation jobs.
    pub workers: usize,
    /// Bounded job-queue capacity (the admission-control knob).
    pub queue_capacity: usize,
    /// Session-cache capacity, in compiled grammars.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Longest accepted request line; longer ones get a typed
    /// `frame_too_large` reply and the connection is closed.
    pub max_frame_len: usize,
    /// Idle read deadline per connection: a client that stalls
    /// mid-request for this long gets a typed `idle_timeout` reply and
    /// its connection closed (a quietly idle connection is closed
    /// silently), so a slow-loris cannot pin connection threads
    /// forever. `None` disables the deadline.
    pub idle_timeout: Option<Duration>,
    /// Frontend analysis configuration used for every compile.
    pub config: Config,
    /// Execution-engine selection: interpreted (the default), AOT, or
    /// on-demand JIT. Compiled engines resolve their route at load time
    /// and cache it with the grammar; a route that cannot be built
    /// degrades each job to the interpreter with a typed reason.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            unix_path: None,
            tcp_addr: None,
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 16,
            default_deadline: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            idle_timeout: Some(Duration::from_secs(60)),
            config: Config::default(),
            engine: EngineConfig::default(),
        }
    }
}

/// Everything the connection threads and workers share.
pub struct ServiceState {
    store: GrammarStore,
    pool: WorkerPool,
    metrics: ServiceMetrics,
    funcs: Funcs,
    config: Config,
    engine: ExecEngine,
    default_deadline: Option<Duration>,
    max_frame_len: usize,
    idle_timeout: Option<Duration>,
    shutdown: AtomicBool,
    unix_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl ServiceState {
    /// Session-cache counters (the concurrency tests pin `analyses`
    /// against these).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Has a shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begin a graceful drain from outside the protocol — the SIGTERM
    /// path. Stops the acceptors exactly like a `shutdown` request;
    /// in-flight jobs still finish and `ServerHandle::wait` returns.
    pub fn begin_drain(&self) {
        request_shutdown(self);
    }

    /// The execution engine (run counters for tests and stats).
    pub fn engine(&self) -> &ExecEngine {
        &self.engine
    }

    /// The engine to resolve loads against, when one is configured
    /// (interpreted services skip preparation entirely).
    fn exec(&self) -> Option<&ExecEngine> {
        (self.engine.config().kind != EngineKind::Interpreted).then_some(&self.engine)
    }
}

/// The daemon entry point; see the module docs.
pub enum Server {}

impl Server {
    /// Bind the configured listeners and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; fails with `InvalidInput` when the
    /// configuration names no listener at all.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "server config names no listener (unix_path or tcp_addr)",
            ));
        }
        let unix_listener = match &cfg.unix_path {
            Some(path) => {
                // A dead daemon leaves its socket file behind; binding
                // over it is the expected restart path.
                let _unused = std::fs::remove_file(path);
                Some(UnixListener::bind(path)?)
            }
            None => None,
        };
        let tcp_listener = match &cfg.tcp_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let state = Arc::new(ServiceState {
            store: GrammarStore::new(cfg.cache_capacity),
            pool: WorkerPool::new(cfg.workers, cfg.queue_capacity),
            metrics: ServiceMetrics::new(),
            funcs: Funcs::standard(),
            config: cfg.config,
            engine: ExecEngine::new(cfg.engine),
            default_deadline: cfg.default_deadline,
            max_frame_len: cfg.max_frame_len,
            idle_timeout: cfg.idle_timeout,
            shutdown: AtomicBool::new(false),
            unix_path: cfg.unix_path,
            tcp_addr,
        });
        let mut acceptors = Vec::new();
        if let Some(listener) = unix_listener {
            let state = Arc::clone(&state);
            acceptors.push(
                std::thread::Builder::new()
                    .name("serve-accept-unix".to_string())
                    .spawn(move || accept_unix(&listener, &state))?,
            );
        }
        if let Some(listener) = tcp_listener {
            let state = Arc::clone(&state);
            acceptors.push(
                std::thread::Builder::new()
                    .name("serve-accept-tcp".to_string())
                    .spawn(move || accept_tcp(&listener, &state))?,
            );
        }
        Ok(ServerHandle { state, acceptors })
    }
}

/// A running daemon. Dropping the handle without calling
/// [`wait`](ServerHandle::wait) or [`shutdown`](ServerHandle::shutdown)
/// stops the service.
pub struct ServerHandle {
    state: Arc<ServiceState>,
    acceptors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound Unix socket path, if one was configured.
    pub fn unix_path(&self) -> Option<&Path> {
        self.state.unix_path.as_deref()
    }

    /// The bound TCP address, if one was configured (with the real
    /// port, even when the config asked for `:0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.state.tcp_addr
    }

    /// The shared service state (counters for tests and embedding).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Block until the daemon stops (a `shutdown` request arrives),
    /// then drain the pool and clean up the socket file. Returns the
    /// pool's final counters, so a drain can be reported.
    pub fn wait(mut self) -> PoolStats {
        self.join_and_drain()
    }

    /// Stop the daemon from outside: unblock the acceptors, drain, and
    /// clean up.
    pub fn shutdown(mut self) -> PoolStats {
        request_shutdown(&self.state);
        self.join_and_drain()
    }

    fn join_and_drain(&mut self) -> PoolStats {
        for h in self.acceptors.drain(..) {
            let _unused = h.join();
        }
        self.state.pool.shutdown();
        let stats = self.state.pool.stats();
        if let Some(path) = &self.state.unix_path {
            let _unused = std::fs::remove_file(path);
        }
        stats
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.acceptors.is_empty() {
            request_shutdown(&self.state);
            let _stats = self.join_and_drain();
        }
    }
}

/// Flip the shutdown flag and poke every listener awake so its
/// blocking `accept` returns and the acceptor can observe the flag.
fn request_shutdown(state: &ServiceState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return; // already requested
    }
    if let Some(path) = &state.unix_path {
        let _unused = UnixStream::connect(path);
    }
    if let Some(addr) = state.tcp_addr {
        let _unused = TcpStream::connect(addr);
    }
}

fn accept_unix(listener: &UnixListener, state: &Arc<ServiceState>) {
    for conn in listener.incoming() {
        if state.is_shutting_down() {
            return;
        }
        if let Ok(stream) = conn {
            let state = Arc::clone(state);
            let _unused = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || {
                    let _unused = stream.set_read_timeout(state.idle_timeout);
                    serve_conn(stream, &state);
                });
        }
    }
}

fn accept_tcp(listener: &TcpListener, state: &Arc<ServiceState>) {
    for conn in listener.incoming() {
        if state.is_shutting_down() {
            return;
        }
        if let Ok(stream) = conn {
            let state = Arc::clone(state);
            let _unused = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || {
                    let _unused = stream.set_read_timeout(state.idle_timeout);
                    serve_conn(stream, &state);
                });
        }
    }
}

/// One client session: request lines in, reply lines out, in order.
///
/// The socket carries its idle read deadline as an OS read timeout
/// (set by the acceptor), so a single timed-out read *is* the idle
/// deadline firing. A stall mid-request earns a typed `idle_timeout`
/// reply before the close; a connection that is merely idle between
/// requests is closed silently. Either way the thread is freed — a
/// slow-loris client cannot pin it.
fn serve_conn<S: Read + Write>(stream: S, state: &Arc<ServiceState>) {
    let mut frames = FrameReader::new(stream, state.max_frame_len);
    loop {
        let line = match frames.read_frame() {
            Ok(line) => line,
            Err(FrameError::TooLarge { limit }) => {
                state.metrics.record_error(kind::FRAME_TOO_LARGE);
                // No resync is possible (the frame boundary is lost),
                // so reply typed and close.
                let reply = error_reply(
                    kind::FRAME_TOO_LARGE,
                    &format!("request line exceeds the {}-byte frame bound", limit),
                );
                let w = frames.get_mut();
                let _unused = writeln!(w, "{}", reply).and_then(|()| w.flush());
                return;
            }
            Err(FrameError::IdleTimeout { mid_frame }) => {
                if mid_frame {
                    state.metrics.record_error(kind::IDLE_TIMEOUT);
                    let reply = error_reply(
                        kind::IDLE_TIMEOUT,
                        "connection stalled mid-request past the idle deadline",
                    );
                    let w = frames.get_mut();
                    let _unused = writeln!(w, "{}", reply).and_then(|()| w.flush());
                }
                return;
            }
            Err(FrameError::BadUtf8) => {
                // The frame boundary is intact, so reply and carry on.
                state.metrics.record_error(kind::BAD_REQUEST);
                let reply = error_reply(kind::BAD_REQUEST, "request line is not UTF-8");
                let w = frames.get_mut();
                if writeln!(w, "{}", reply).and_then(|()| w.flush()).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Eof | FrameError::TruncatedFrame | FrameError::Io(_)) => {
                return; // client hung up
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, stop) = dispatch_line(&line, state);
        let w = frames.get_mut();
        if writeln!(w, "{}", reply).and_then(|()| w.flush()).is_err() {
            return;
        }
        if stop {
            request_shutdown(state);
            return;
        }
    }
}

/// Parse and answer one request line. The bool says "shut down after
/// replying".
fn dispatch_line(line: &str, state: &Arc<ServiceState>) -> (Json, bool) {
    let parsed = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            state.metrics.record_error(kind::BAD_REQUEST);
            return (
                error_reply(kind::BAD_REQUEST, &format!("request is not JSON: {}", e)),
                false,
            );
        }
    };
    let request = match Request::parse(&parsed) {
        Ok(r) => r,
        Err(msg) => {
            state.metrics.record_error(kind::BAD_REQUEST);
            return (error_reply(kind::BAD_REQUEST, &msg), false);
        }
    };
    match request {
        Request::LoadGrammar {
            source,
            scanner,
            name,
        } => (
            handle_load(state, &source, scanner.as_deref(), name.as_deref()),
            false,
        ),
        Request::Translate {
            grammar,
            work,
            deadline_ms,
            fault,
        } => (
            handle_translate(state, &grammar, work, deadline_ms, fault),
            false,
        ),
        Request::TranslateBatch {
            grammar,
            jobs,
            deadline_ms,
        } => (handle_batch(state, &grammar, jobs, deadline_ms), false),
        Request::Check { grammar } => (handle_check(state, &grammar), false),
        Request::Ping => (ok_reply(vec![]), false),
        Request::Stats => {
            let mut fields = state.metrics.render(&state.store, &state.pool);
            let c = state.engine.counters();
            fields.push((
                "engine".to_string(),
                Json::Obj(vec![
                    (
                        "kind".to_string(),
                        Json::str(state.engine.config().kind.as_str()),
                    ),
                    ("aot_runs".to_string(), Json::int(c.aot_runs as i64)),
                    ("jit_runs".to_string(), Json::int(c.jit_runs as i64)),
                    (
                        "interpreted_runs".to_string(),
                        Json::int(c.interpreted_runs as i64),
                    ),
                    ("fallbacks".to_string(), Json::int(c.fallbacks as i64)),
                    ("jit_compiles".to_string(), Json::int(c.jit_compiles as i64)),
                ]),
            ));
            (ok_reply(fields), false)
        }
        Request::Shutdown => (ok_reply(vec![]), true),
    }
}

fn handle_load(
    state: &Arc<ServiceState>,
    source: &str,
    scanner: Option<&str>,
    name: Option<&str>,
) -> Json {
    state.metrics.loads.fetch_add(1, Ordering::Relaxed);
    match state
        .store
        .load_with_engine(source, scanner, name, &state.config, state.exec())
    {
        Ok((g, cached)) => ok_reply(vec![
            ("grammar".to_string(), Json::str(&g.key)),
            ("name".to_string(), Json::str(&g.name)),
            ("cached".to_string(), Json::Bool(cached)),
            ("passes".to_string(), Json::int(g.passes() as i64)),
            (
                "compile_ms".to_string(),
                Json::Num(g.compile_time.as_secs_f64() * 1e3),
            ),
            ("scanner".to_string(), Json::Bool(g.translator().is_some())),
        ]),
        Err(e) => {
            let k = load_error_kind(&e);
            state.metrics.record_error(k);
            error_reply_with(k, &e.to_string(), load_error_detail(&e))
        }
    }
}

/// Answer a `check` request: run the `AG0xx` lints and reply with
/// coded diagnostics.
///
/// A handle reuses the session cache outright — the compiled analysis
/// and its span tables were captured at load time, so no frontend
/// overlay runs again. Inline source goes through the cache the same
/// way (warm source is also free); only a source the frontend rejects
/// falls back to the degraded check driver, so the client still gets
/// located AG006/AG007/AG011/AG012 findings out of a broken grammar
/// instead of one opaque `compile` error.
fn handle_check(state: &Arc<ServiceState>, gref: &GrammarRef) -> Json {
    let lint_cfg = LintConfig {
        explain_residual_copies: !state.config.disable_subsumption,
        ..LintConfig::default()
    };
    let (handle, report) = match gref {
        GrammarRef::Handle(h) => match state.store.get(h) {
            Some(g) => {
                let report = CheckReport {
                    findings: run_lints(g.analysis(), g.spans(), &lint_cfg),
                    passes: Some(g.passes()),
                };
                (Some(g.key.clone()), report)
            }
            None => {
                state.metrics.record_error(kind::GRAMMAR_NOT_FOUND);
                return error_reply(
                    kind::GRAMMAR_NOT_FOUND,
                    &format!(
                        "no resident grammar has handle `{}` (evicted or never loaded)",
                        h
                    ),
                );
            }
        },
        GrammarRef::Source { source, scanner } => {
            match state.store.load_with_engine(
                source,
                scanner.as_deref(),
                None,
                &state.config,
                state.exec(),
            ) {
                Ok((g, _cached)) => {
                    let report = CheckReport {
                        findings: run_lints(g.analysis(), g.spans(), &lint_cfg),
                        passes: Some(g.passes()),
                    };
                    (Some(g.key.clone()), report)
                }
                Err(LoadError::Compile(_)) => {
                    (None, check_source(source, &state.config, &lint_cfg))
                }
                Err(e) => {
                    let k = load_error_kind(&e);
                    state.metrics.record_error(k);
                    return error_reply_with(k, &e.to_string(), load_error_detail(&e));
                }
            }
        }
    };
    ok_reply(vec![
        (
            "grammar".to_string(),
            handle.map_or(Json::Null, |h| Json::str(&h)),
        ),
        ("errors".to_string(), Json::int(report.errors() as i64)),
        ("warnings".to_string(), Json::int(report.warnings() as i64)),
        ("notes".to_string(), Json::int(report.notes() as i64)),
        (
            "passes".to_string(),
            report.passes.map_or(Json::Null, |p| Json::int(p as i64)),
        ),
        (
            "diagnostics".to_string(),
            Json::Arr(report.findings.iter().map(Finding::to_json).collect()),
        ),
    ])
}

/// Resolve a request's grammar reference against the session cache.
/// The error is the finished reply (kind recorded by the caller via
/// the tuple's first field).
fn resolve(
    state: &Arc<ServiceState>,
    gref: &GrammarRef,
) -> Result<Arc<CompiledGrammar>, (&'static str, Json)> {
    match gref {
        GrammarRef::Handle(h) => state.store.get(h).ok_or_else(|| {
            (
                kind::GRAMMAR_NOT_FOUND,
                error_reply(
                    kind::GRAMMAR_NOT_FOUND,
                    &format!(
                        "no resident grammar has handle `{}` (evicted or never loaded)",
                        h
                    ),
                ),
            )
        }),
        GrammarRef::Source { source, scanner } => state
            .store
            .load_with_engine(
                source,
                scanner.as_deref(),
                None,
                &state.config,
                state.exec(),
            )
            .map(|(g, _cached)| g)
            .map_err(|e| {
                let k = load_error_kind(&e);
                (
                    k,
                    error_reply_with(k, &e.to_string(), load_error_detail(&e)),
                )
            }),
    }
}

/// Submit one translate job; on admission failure produce the typed
/// rejection immediately.
fn submit_job(
    state: &Arc<ServiceState>,
    grammar: Arc<CompiledGrammar>,
    work: Work,
    deadline: Option<Duration>,
    fault: Option<String>,
) -> Result<Receiver<Json>, Json> {
    let job_state = Arc::clone(state);
    match state.pool.submit(Box::new(move |waited| {
        run_job(
            &job_state,
            &grammar,
            &work,
            deadline,
            fault.as_deref(),
            waited,
        )
    })) {
        Ok(rx) => Ok(rx),
        Err(SubmitError::Overloaded) => {
            state.metrics.record_error(kind::OVERLOADED);
            Err(error_reply(
                kind::OVERLOADED,
                "job queue is full; retry after in-flight work drains",
            ))
        }
        Err(SubmitError::ShuttingDown) => Err(error_reply(
            kind::SHUTTING_DOWN,
            "the service is draining and accepts no new work",
        )),
    }
}

fn await_reply(rx: Receiver<Json>) -> Json {
    rx.recv().unwrap_or_else(|_| {
        error_reply(
            kind::SHUTTING_DOWN,
            "the service stopped before the job produced a reply",
        )
    })
}

fn handle_translate(
    state: &Arc<ServiceState>,
    gref: &GrammarRef,
    work: Work,
    deadline_ms: Option<u64>,
    fault: Option<String>,
) -> Json {
    let grammar = match resolve(state, gref) {
        Ok(g) => g,
        Err((k, reply)) => {
            state.metrics.record_error(k);
            return reply;
        }
    };
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(state.default_deadline);
    match submit_job(state, grammar, work, deadline, fault) {
        Ok(rx) => await_reply(rx),
        Err(rejection) => rejection,
    }
}

/// Fan a batch out through the pool (each job is admitted separately,
/// so one oversized batch cannot starve other clients' admissions
/// beyond the shared queue bound), then collect replies in job order.
fn handle_batch(
    state: &Arc<ServiceState>,
    gref: &GrammarRef,
    jobs: Vec<Work>,
    deadline_ms: Option<u64>,
) -> Json {
    let grammar = match resolve(state, gref) {
        Ok(g) => g,
        Err((k, reply)) => {
            state.metrics.record_error(k);
            return reply;
        }
    };
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(state.default_deadline);
    let pending: Vec<Result<Receiver<Json>, Json>> = jobs
        .into_iter()
        .map(|work| submit_job(state, Arc::clone(&grammar), work, deadline, None))
        .collect();
    let results: Vec<Json> = pending
        .into_iter()
        .map(|p| match p {
            Ok(rx) => await_reply(rx),
            Err(rejection) => rejection,
        })
        .collect();
    let failed = results
        .iter()
        .filter(|r| r.get("ok").and_then(Json::as_bool) != Some(true))
        .count();
    ok_reply(vec![
        ("jobs".to_string(), Json::int(results.len() as i64)),
        ("failed".to_string(), Json::int(failed as i64)),
        ("results".to_string(), Json::Arr(results)),
    ])
}

/// The worker-side body of one translate job.
fn run_job(
    state: &Arc<ServiceState>,
    grammar: &CompiledGrammar,
    work: &Work,
    deadline: Option<Duration>,
    fault: Option<&str>,
    waited: Duration,
) -> Json {
    // Deadlines include queue time: a job that waited its budget out
    // fails fast without touching the evaluator.
    let remaining = match deadline {
        Some(d) => match d.checked_sub(waited) {
            Some(r) if r > Duration::ZERO => Some(r),
            _ => {
                state.metrics.record_error("deadline");
                return error_reply(
                    "deadline",
                    &format!(
                        "job waited {:?} in the queue, past its {:?} deadline",
                        waited, d
                    ),
                );
            }
        },
        None => None,
    };
    if fault == Some("panic") {
        // Test support: exercises the pool's panic supervisor and the
        // typed `panicked` reply path end to end.
        panic!("injected fault: panic");
    }
    if fault == Some("stall") {
        // Test support: a deterministically slow job, for exercising
        // admission control and queue-wait deadline accounting.
        std::thread::sleep(Duration::from_millis(250));
    }
    let started = Instant::now();
    // The initial-file strategy must match the plan's first direction
    // (same rule as the profiler).
    let strategy = match grammar.analysis().passes.direction(1) {
        Direction::RightToLeft => Strategy::BottomUp,
        Direction::LeftToRight => Strategy::Prefix,
    };
    let opts = EvalOptions {
        strategy,
        profile: true,
        deadline: remaining,
        // Daemon jobs are transient and run concurrently on the pool:
        // use the shared-nothing owned RAM store, not temp files.
        backing: Backing::Memory,
        ..EvalOptions::default()
    };
    // Obtain the parse tree: scan + parse for `input` work, synthesize
    // from the grammar for `budget` work. Splitting the tree from the
    // evaluation lets one code path below choose the engine.
    let tree: Result<PTree, (&'static str, String)> = match work {
        Work::Input(text) => match grammar.translator() {
            Some(t) => {
                let mut names = NameTable::new();
                t.parse_input(text, &standard_intrinsics, &mut names)
                    .map_err(|e| (translate_error_kind(&e), e.to_string()))
            }
            None => Err((
                kind::BAD_REQUEST,
                "grammar was loaded without a scanner; send `budget` instead of `input`"
                    .to_string(),
            )),
        },
        Work::Budget(n) => synthesize_tree(&grammar.analysis().grammar, (*n).max(1)).ok_or((
            kind::BAD_REQUEST,
            "no finite derivation exists for the start symbol".to_string(),
        )),
    };
    let mut engine_used = EngineKind::Interpreted;
    let mut engine_fallback = None;
    let result: Result<Evaluation, (&'static str, String)> = tree.and_then(|tree| {
        match grammar.prepared() {
            // The compiled route resolved at load time: run it, with
            // per-job degradation to the interpreter on any compiled-side
            // failure (the typed reason rides along in the reply).
            Some(p) => {
                let outcome =
                    state
                        .engine
                        .evaluate(p, grammar.analysis(), &state.funcs, &tree, &opts);
                engine_used = outcome.engine_used;
                engine_fallback = outcome.fallback;
                outcome
                    .result
                    .map_err(|e| (eval_error_kind(&e), e.to_string()))
            }
            None => evaluate(grammar.analysis(), &state.funcs, &tree, &opts)
                .map_err(|e| (eval_error_kind(&e), e.to_string())),
        }
    });
    let fallback_json = |r: &linguist_engine::FallbackReason| {
        Json::Obj(vec![
            ("kind".to_string(), Json::str(r.code())),
            ("detail".to_string(), Json::str(&r.detail())),
        ])
    };
    match result {
        Ok(eval) => {
            let wall = waited + started.elapsed();
            state.metrics.record_translate(wall, eval.metrics.as_ref());
            let outputs: Vec<(String, Json)> = eval
                .outputs
                .iter()
                .map(|(a, v)| {
                    (
                        grammar.analysis().grammar.attr_name(*a).to_string(),
                        Json::str(&v.to_string()),
                    )
                })
                .collect();
            let mut fields = vec![
                ("grammar".to_string(), Json::str(&grammar.key)),
                ("outputs".to_string(), Json::Obj(outputs)),
                (
                    "passes".to_string(),
                    Json::int(eval.stats.passes.len() as i64),
                ),
                ("engine".to_string(), Json::str(engine_used.as_str())),
                ("wall_ms".to_string(), Json::Num(wall.as_secs_f64() * 1e3)),
                (
                    "queue_ms".to_string(),
                    Json::Num(waited.as_secs_f64() * 1e3),
                ),
            ];
            // A degraded job still succeeds (the interpreter answered);
            // the typed reason is reported, and the engine's own
            // fallback counter tracks the rate for `stats`.
            if let Some(r) = &engine_fallback {
                fields.push(("engine_fallback".to_string(), fallback_json(r)));
            }
            ok_reply(fields)
        }
        Err((k, msg)) => {
            state.metrics.record_error(k);
            match &engine_fallback {
                // The job degraded to the interpreter *and* the
                // interpreter itself failed: the typed degradation
                // reason rides in the error detail.
                Some(r) => error_reply_with(
                    k,
                    &msg,
                    vec![("engine_fallback".to_string(), fallback_json(r))],
                ),
                None => error_reply(k, &msg),
            }
        }
    }
}
