//! Fixed-bucket latency histogram for the `Stats` endpoint.
//!
//! Quantiles without dependencies and without unbounded memory: one
//! atomic counter per power-of-two microsecond bucket. Recording is a
//! single relaxed `fetch_add` (safe from every worker concurrently);
//! reading walks 40 counters. The price is resolution — a reported
//! quantile is the *upper edge* of the bucket the target sample fell
//! into, so values are conservative (never under-reported) and at most
//! 2× the true latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: `2^39` µs ≈ 6.4 days in the top finite bucket, which
/// comfortably covers any request this service will ever answer.
const BUCKETS: usize = 40;

/// A concurrent power-of-two-bucket histogram of durations.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket `i` holds samples in `[2^(i-1), 2^i)` µs (bucket 0 holds 0–1 µs).
fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper edge of bucket `i`, in microseconds.
fn upper_edge(i: usize) -> u64 {
    1u64 << i
}

impl LatencyHistogram {
    /// A fresh zeroed histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as an upper bound, or `None`
    /// when nothing has been recorded yet.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        // 1-based rank of the sample we want, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(upper_edge(i)));
            }
        }
        unreachable!("rank is bounded by the total")
    }

    /// Convenience pair for the stats report: `(p50, p99)`.
    pub fn p50_p99(&self) -> (Option<Duration>, Option<Duration>) {
        (self.quantile(0.50), self.quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // 1 ms lands in (512, 1024] µs; 100 ms in (65.5, 131.1] ms.
        assert!(p50 >= Duration::from_millis(1) && p50 <= Duration::from_millis(2));
        assert!(p99 >= Duration::from_millis(100) && p99 <= Duration::from_millis(200));
        assert!(h.quantile(0.0).unwrap() <= p50);
        assert_eq!(h.quantile(1.0).unwrap(), p99);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        h.record(Duration::from_micros(i));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
