//! Minimal SIGTERM/SIGINT plumbing, no libc crate.
//!
//! The serve and router binaries want exactly one thing from signals:
//! "a termination was requested, start draining". A full signal
//! framework is overkill for that, so this module registers an
//! async-signal-safe handler that flips one `AtomicBool` via the libc
//! `signal(2)` symbol (present in every Linux/macOS process), and the
//! binaries poll the flag from an ordinary watcher thread that calls
//! `begin_drain`.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    // The C library's signal(2). Handler and return are plain code
    // addresses; usize keeps us out of fn-pointer/SIG_ERR casting
    // games on the boundary.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_termination_signal(_signum: i32) {
    // Only async-signal-safe work here: one relaxed store.
    TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
}

/// Install the SIGTERM/SIGINT handler. Idempotent; call once per
/// process before serving.
pub fn install_termination_handler() {
    let handler = on_termination_signal as extern "C" fn(i32) as usize;
    // SAFETY: signal(2) with a handler that only performs an atomic
    // store is async-signal-safe; we never inspect the previous
    // disposition.
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Has SIGTERM/SIGINT arrived since startup?
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::Relaxed)
}

/// Test hook: pretend a signal arrived.
#[cfg(test)]
pub(crate) fn simulate_termination() {
    TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches_on() {
        // Note: process-global state; this test only ever moves the
        // flag false -> true, so it cannot race another test into a
        // wrong answer.
        install_termination_handler();
        simulate_termination();
        assert!(termination_requested());
    }
}
