//! The admission-controlled worker pool.
//!
//! Translation work never runs on a connection thread: the connection
//! submits a job into a **bounded** queue and waits for that job's
//! reply. The bound is the admission control — when the queue is full,
//! [`WorkerPool::submit`] fails *immediately* and the connection sends
//! a typed `overloaded` reply instead of queueing unbounded work behind
//! a slow grammar. Rejection is cheap by design: the caller learns the
//! service is saturated in microseconds, not after a timeout.
//!
//! Each job runs under the batch evaluator's panic supervisor
//! ([`supervised`](linguist_eval::batch::supervised)), so a panicking
//! semantic function produces a typed `panicked` reply for its own
//! client and the worker thread survives to take the next job.
//!
//! Jobs learn how long they waited in the queue (their closure receives
//! the measured wait), which is what lets per-request deadlines cover
//! queue time: a job that waited past its deadline fails fast without
//! evaluating anything.

use linguist_eval::batch::supervised;
use linguist_eval::machine::EvalError;
use linguist_support::json::Json;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::proto::{error_reply, eval_error_kind};

/// A queued unit of work: given the measured queue wait, produce the
/// reply to send.
pub type JobFn = Box<dyn FnOnce(Duration) -> Json + Send + 'static>;

struct Job {
    queued_at: Instant,
    run: JobFn,
    reply: SyncSender<Json>,
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (admission control).
    Overloaded,
    /// The pool is shutting down.
    ShuttingDown,
}

/// Live and lifetime counters, for the `Stats` endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs executing right now.
    pub running: usize,
    /// Queue capacity (the admission bound).
    pub queue_capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Jobs accepted over the pool's lifetime.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs whose closure panicked (each produced a typed reply).
    pub panicked: u64,
    /// Jobs completed (including panicked ones — every accepted job
    /// replies exactly once).
    pub completed: u64,
}

struct Shared {
    queued: AtomicUsize,
    running: AtomicUsize,
    submitted: AtomicU64,
    rejected: AtomicU64,
    panicked: AtomicU64,
    completed: AtomicU64,
}

/// A fixed set of worker threads draining one bounded queue.
pub struct WorkerPool {
    tx: Mutex<Option<SyncSender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    shared: Arc<Shared>,
    queue_capacity: usize,
    workers: usize,
}

impl WorkerPool {
    /// Start `workers` threads behind a queue of at most `queue_capacity`
    /// waiting jobs (both clamped to at least 1).
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        let workers = workers.max(1);
        let queue_capacity = queue_capacity.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{}", i))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            shared,
            queue_capacity,
            workers,
        }
    }

    /// Submit a job. On acceptance the reply eventually arrives on the
    /// returned receiver (exactly one message, even if the job panics).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full — the caller
    /// should answer with a typed `overloaded` reply rather than block.
    pub fn submit(&self, run: JobFn) -> Result<Receiver<Json>, SubmitError> {
        let guard = self.tx.lock().expect("pool poisoned");
        let tx = guard.as_ref().ok_or(SubmitError::ShuttingDown)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            queued_at: Instant::now(),
            run,
            reply: reply_tx,
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.queued.fetch_add(1, Ordering::Relaxed);
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            queued: self.shared.queued.load(Ordering::Relaxed),
            running: self.shared.running.load(Ordering::Relaxed),
            queue_capacity: self.queue_capacity,
            workers: self.workers,
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, drain queued jobs, join the workers. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender lets workers finish the queue, then exit.
        self.tx.lock().expect("pool poisoned").take();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool poisoned"));
        for h in handles {
            let _unused = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool({:?})", self.stats())
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Hold the receiver lock only for the dequeue, not the job.
        let job = match rx.lock().expect("pool poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: shutdown
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        shared.running.fetch_add(1, Ordering::Relaxed);
        let waited = job.queued_at.elapsed();
        let run = job.run;
        // The batch evaluator's supervisor turns a panic into a typed
        // EvalError; here that becomes a typed reply for this client
        // only, and this worker lives on.
        let reply = match supervised(move || Ok::<Json, EvalError>(run(waited))) {
            Ok(reply) => reply,
            Err(e) => {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
                error_reply(eval_error_kind(&e), &e.to_string())
            }
        };
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // The client may have hung up; that is its problem, not ours.
        let _unused = job.reply.try_send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_reply_in_submission_order_per_receiver() {
        let pool = WorkerPool::new(2, 8);
        let rxs: Vec<_> = (0..6)
            .map(|i| {
                pool.submit(Box::new(move |_w| Json::int(i)))
                    .expect("queue has room")
            })
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            let got = rx.recv().expect("reply arrives");
            assert_eq!(got.as_i64(), Some(i as i64));
        }
        let s = pool.stats();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 6);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = sync_channel::<()>(0);
        let gate_rx = Mutex::new(gate_rx);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Occupy the single worker until the gate opens.
                let blocker = pool
                    .submit(Box::new(move |_w| {
                        let _unused = gate_rx.lock().expect("gate").recv();
                        Json::Null
                    }))
                    .expect("first job admitted");
                // Wait until the worker has actually dequeued it.
                while pool.stats().running == 0 {
                    std::thread::yield_now();
                }
                // One job fits in the queue...
                let queued = pool
                    .submit(Box::new(|_w| Json::Null))
                    .expect("second job queues");
                // ...and the next is refused, immediately.
                let refused = pool.submit(Box::new(|_w| Json::Null));
                assert_eq!(refused.unwrap_err(), SubmitError::Overloaded);
                gate_tx.send(()).expect("worker is waiting");
                assert!(blocker.recv().expect("blocker replies").is_null());
                assert!(queued.recv().expect("queued job replies").is_null());
            });
        });
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn a_panicking_job_replies_typed_and_the_worker_survives() {
        let pool = WorkerPool::new(1, 4);
        let rx1 = pool
            .submit(Box::new(|_w| panic!("injected fault: panic")))
            .expect("admitted");
        let reply = rx1.recv().expect("panic still replies");
        assert_eq!(
            reply
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("panicked")
        );
        // The same (sole) worker takes the next job.
        let rx2 = pool.submit(Box::new(|_w| Json::int(7))).expect("admitted");
        assert_eq!(rx2.recv().expect("reply").as_i64(), Some(7));
        let s = pool.stats();
        assert_eq!(s.panicked, 1);
        assert_eq!(s.completed, 2);
    }

    #[test]
    fn jobs_observe_their_queue_wait() {
        let pool = WorkerPool::new(1, 4);
        let rx = pool
            .submit(Box::new(|waited| {
                Json::Bool(waited < Duration::from_secs(60))
            }))
            .expect("admitted");
        assert_eq!(rx.recv().expect("reply").as_bool(), Some(true));
    }

    #[test]
    fn shutdown_drains_then_refuses() {
        let pool = WorkerPool::new(2, 8);
        let rx = pool.submit(Box::new(|_w| Json::int(1))).expect("admitted");
        pool.shutdown();
        assert_eq!(rx.recv().expect("queued work drained").as_i64(), Some(1));
        assert_eq!(
            pool.submit(Box::new(|_w| Json::Null)).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }
}
