//! An open-loop load generator for the serve topology.
//!
//! Closed-loop load tests (send, wait, send) lie about tail latency:
//! when the service slows down, the generator slows down with it, and
//! the backlog a real user population would have piled up never
//! happens ("coordinated omission"). This generator is **open-loop**:
//! request `i` of a `rate`-per-second run has a *scheduled* arrival
//! time `start + i/rate` that does not care how the service is doing,
//! and its recorded latency runs from that scheduled arrival to the
//! reply — so time spent waiting behind a backlog counts, exactly as a
//! user would experience it.
//!
//! The generator preloads a configurable number of distinct grammar
//! variants (spreading keys across the ring when pointed at a router)
//! and then drives `translate` requests with synthetic-tree budgets
//! over persistent connections, reconnecting on transport failure.

use linguist_support::json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::hist::LatencyHistogram;
use crate::proto::retryable_kind;
use crate::router::ShardAddr;

/// The grammar the generator drives: scanner-free (requests use
/// `budget`, so any topology can run it) and cheap enough to evaluate
/// thousands of times per second.
const LOAD_GRAMMAR: &str = r#"
grammar Load ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
prod s0 = x :
  s0.V = x.OBJ ;
end
end
"#;

/// A distinct-by-content-hash variant of the load grammar. Variant 0
/// is the base text.
pub fn grammar_variant(i: usize) -> String {
    format!("{}{}", LOAD_GRAMMAR, "\n".repeat(i))
}

/// One load run's shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Where to send traffic (a router or a bare shard).
    pub target: ShardAddr,
    /// Offered load, requests per second.
    pub rate: f64,
    /// How long to offer it.
    pub duration: Duration,
    /// Distinct grammar variants to preload and cycle through.
    pub grammars: usize,
    /// Synthetic-tree budget per translate.
    pub budget: usize,
    /// Sender threads (each holds one persistent connection).
    pub senders: usize,
    /// Optional per-request deadline forwarded to the service.
    pub deadline_ms: Option<u64>,
    /// Client-side resends per request on transport failure or a
    /// transient typed error. 0 = measure the topology's own retries.
    pub retries: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            target: ShardAddr::Tcp("127.0.0.1:0".to_string()),
            rate: 50.0,
            duration: Duration::from_secs(1),
            grammars: 4,
            budget: 48,
            senders: 4,
            deadline_ms: None,
            retries: 0,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The configured offered load.
    pub offered_rps: f64,
    /// Requests actually sent.
    pub sent: u64,
    /// `ok:true` replies.
    pub ok: u64,
    /// Everything else (typed errors and transport failures).
    pub failed: u64,
    /// Failure counts by `error.kind` (transport failures count under
    /// `"transport"`).
    pub failures_by_kind: Vec<(String, u64)>,
    /// Latency from *scheduled* arrival, conservative upper bounds.
    pub p50: Option<Duration>,
    /// 99th percentile.
    pub p99: Option<Duration>,
    /// 99.9th percentile.
    pub p999: Option<Duration>,
    /// Wall clock of the whole run.
    pub wall: Duration,
    /// Client-side resends performed (0 unless `retries > 0`).
    pub resends: u64,
}

impl LoadReport {
    /// Fraction of sent requests that got `ok:true`.
    pub fn success_rate(&self) -> f64 {
        if self.sent == 0 {
            return 1.0;
        }
        self.ok as f64 / self.sent as f64
    }

    /// Requests completed per wall-clock second.
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.sent as f64 / secs
    }

    /// The report as one JSON object (the bench snapshot's row shape).
    pub fn to_json(&self) -> Json {
        let ms = |q: Option<Duration>| match q {
            Some(d) => Json::Num(d.as_secs_f64() * 1e3),
            None => Json::Null,
        };
        let kinds: Vec<Json> = self
            .failures_by_kind
            .iter()
            .map(|(k, n)| {
                Json::Obj(vec![
                    ("kind".to_string(), Json::str(k)),
                    ("count".to_string(), Json::int(*n as i64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("offered_rps".to_string(), Json::Num(self.offered_rps)),
            ("sent".to_string(), Json::int(self.sent as i64)),
            ("ok".to_string(), Json::int(self.ok as i64)),
            ("failed".to_string(), Json::int(self.failed as i64)),
            ("success_rate".to_string(), Json::Num(self.success_rate())),
            ("p50_ms".to_string(), ms(self.p50)),
            ("p99_ms".to_string(), ms(self.p99)),
            ("p999_ms".to_string(), ms(self.p999)),
            ("achieved_rps".to_string(), Json::Num(self.achieved_rps())),
            (
                "wall_ms".to_string(),
                Json::Num(self.wall.as_secs_f64() * 1e3),
            ),
            ("resends".to_string(), Json::int(self.resends as i64)),
            ("failures_by_kind".to_string(), Json::Arr(kinds)),
        ])
    }
}

fn connect(target: &ShardAddr) -> std::io::Result<Client> {
    match target {
        ShardAddr::Unix(p) => Client::connect_unix(p),
        ShardAddr::Tcp(a) => Client::connect_tcp(a.as_str()),
    }
}

/// Preload the grammar variants, with bounded patience (the topology
/// may still be coming up). Returns the handles, variant order.
///
/// # Errors
///
/// When a variant cannot be loaded within the retry budget.
pub fn preload(target: &ShardAddr, grammars: usize) -> std::io::Result<Vec<String>> {
    let mut handles = Vec::with_capacity(grammars.max(1));
    for i in 0..grammars.max(1) {
        let source = grammar_variant(i);
        let mut last: Option<std::io::Error> = None;
        let mut handle = None;
        for _attempt in 0..20 {
            let result = connect(target)
                .and_then(|mut c| c.load_grammar(&source, None, Some(&format!("load-{}", i))));
            match result {
                Ok(reply) if reply.get("ok").and_then(Json::as_bool) == Some(true) => {
                    handle = reply
                        .get("grammar")
                        .and_then(Json::as_str)
                        .map(str::to_string);
                    break;
                }
                Ok(reply) => {
                    last = Some(std::io::Error::other(format!("load refused: {}", reply)));
                }
                Err(e) => last = Some(e),
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        match handle {
            Some(h) => handles.push(h),
            None => {
                return Err(last.unwrap_or_else(|| {
                    std::io::Error::other("preload failed with no error recorded")
                }))
            }
        }
    }
    Ok(handles)
}

struct Outcome {
    ok: bool,
    kind: Option<String>,
    resends: u64,
}

/// One request with the client-side retry budget: reconnects on
/// transport failure, resends on transport failure or a transient
/// typed error.
fn send_one(
    client: &mut Option<Client>,
    target: &ShardAddr,
    handle: &str,
    budget: usize,
    deadline_ms: Option<u64>,
    retries: usize,
) -> Outcome {
    let mut resends = 0u64;
    for attempt in 0..=retries {
        if client.is_none() {
            match connect(target) {
                Ok(c) => *client = Some(c),
                Err(_) => {
                    if attempt < retries {
                        resends += 1;
                        std::thread::sleep(Duration::from_millis(5 << attempt.min(4)));
                        continue;
                    }
                    return Outcome {
                        ok: false,
                        kind: Some("transport".to_string()),
                        resends,
                    };
                }
            }
        }
        let c = client.as_mut().expect("client just ensured");
        match c.translate_budget(handle, budget, deadline_ms) {
            Ok(reply) => {
                if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                    return Outcome {
                        ok: true,
                        kind: None,
                        resends,
                    };
                }
                let k = reply
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                if attempt < retries && retryable_kind(&k) {
                    resends += 1;
                    std::thread::sleep(Duration::from_millis(5 << attempt.min(4)));
                    continue;
                }
                return Outcome {
                    ok: false,
                    kind: Some(k),
                    resends,
                };
            }
            Err(_) => {
                // The connection is poisoned; drop it and maybe retry.
                *client = None;
                if attempt < retries {
                    resends += 1;
                    std::thread::sleep(Duration::from_millis(5 << attempt.min(4)));
                    continue;
                }
                return Outcome {
                    ok: false,
                    kind: Some("transport".to_string()),
                    resends,
                };
            }
        }
    }
    unreachable!("retry loop always returns");
}

/// Run one open-loop load test. Preloads, then offers
/// `rate × duration` requests on schedule.
///
/// # Errors
///
/// Preload failure (the run itself always produces a report — failures
/// are data, not errors).
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let handles = preload(&cfg.target, cfg.grammars)?;
    let total = (cfg.rate * cfg.duration.as_secs_f64()).round().max(1.0) as u64;
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(0.001));
    let hist = LatencyHistogram::new();
    let next = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let resends = AtomicU64::new(0);
    let kinds: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.senders.max(1) {
            s.spawn(|| {
                let mut client: Option<Client> = None;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return;
                    }
                    // Open loop: wait for the scheduled arrival, then
                    // measure from it, backlog included.
                    let scheduled = interval.mul_f64(i as f64);
                    loop {
                        let now = start.elapsed();
                        if now >= scheduled {
                            break;
                        }
                        std::thread::sleep((scheduled - now).min(Duration::from_millis(5)));
                    }
                    let handle = &handles[(i as usize) % handles.len()];
                    let outcome = send_one(
                        &mut client,
                        &cfg.target,
                        handle,
                        cfg.budget,
                        cfg.deadline_ms,
                        cfg.retries,
                    );
                    hist.record(start.elapsed().saturating_sub(scheduled));
                    resends.fetch_add(outcome.resends, Ordering::Relaxed);
                    if outcome.ok {
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        failed.fetch_add(1, Ordering::Relaxed);
                        let k = outcome.kind.unwrap_or_else(|| "unknown".to_string());
                        *kinds.lock().expect("kinds poisoned").entry(k).or_insert(0) += 1;
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let mut failures_by_kind: Vec<(String, u64)> = kinds
        .into_inner()
        .expect("kinds poisoned")
        .into_iter()
        .collect();
    failures_by_kind.sort();
    Ok(LoadReport {
        offered_rps: cfg.rate,
        sent: total,
        ok: ok.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        failures_by_kind,
        p50: hist.quantile(0.50),
        p99: hist.quantile(0.99),
        p999: hist.quantile(0.999),
        wall,
        resends: resends.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_distinct_content_hashes() {
        use crate::store::grammar_key;
        let keys: std::collections::HashSet<String> = (0..8)
            .map(|i| grammar_key(&grammar_variant(i), None))
            .collect();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn report_json_has_the_snapshot_row_shape() {
        let report = LoadReport {
            offered_rps: 100.0,
            sent: 100,
            ok: 99,
            failed: 1,
            failures_by_kind: vec![("overloaded".to_string(), 1)],
            p50: Some(Duration::from_millis(2)),
            p99: Some(Duration::from_millis(8)),
            p999: Some(Duration::from_millis(16)),
            wall: Duration::from_secs(1),
            resends: 0,
        };
        let j = report.to_json();
        let parsed = Json::parse(&j.to_string()).expect("report renders valid JSON");
        assert_eq!(parsed.get("sent").and_then(Json::as_i64), Some(100));
        assert_eq!(
            parsed.get("success_rate").and_then(Json::as_f64),
            Some(0.99)
        );
        assert!(parsed.get("p999_ms").and_then(Json::as_f64).is_some());
        assert_eq!(
            parsed
                .get("failures_by_kind")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn success_rate_is_total_when_nothing_was_sent() {
        let report = LoadReport {
            offered_rps: 0.0,
            sent: 0,
            ok: 0,
            failed: 0,
            failures_by_kind: vec![],
            p50: None,
            p99: None,
            p999: None,
            wall: Duration::ZERO,
            resends: 0,
        };
        assert!((report.success_rate() - 1.0).abs() < f64::EPSILON);
    }
}
