//! The wire protocol: newline-delimited JSON requests and replies.
//!
//! One connection carries a sequence of request lines; every request
//! gets exactly one reply line, in order. Success replies are
//! `{"ok":true, ...}`; failures are
//! `{"ok":false,"error":{"kind":K,"message":M}}` where `K` is a stable
//! machine-readable kind: the evaluator's
//! [`FailureKind`](linguist_eval::batch::FailureKind) names for
//! evaluation failures, plus the service-level kinds below
//! (`overloaded`, `grammar_not_found`, `bad_request`, …). Clients
//! branch on `kind`; `message` is for humans.
//!
//! Requests are tagged with `"op"`:
//!
//! | op                | fields |
//! |-------------------|--------|
//! | `load_grammar`    | `source`, optional `scanner` (bundled-scanner name), optional `name` |
//! | `translate`       | `grammar` (handle) *or* `source`+`scanner`; `input` *or* `budget`; optional `deadline_ms`, `fault` |
//! | `translate_batch` | same grammar addressing; `jobs`: array of strings (inputs) and/or numbers (budgets); optional `deadline_ms` |
//! | `check`           | `grammar` (handle) *or* `source`+`scanner`: run the `AG0xx` lints and return coded diagnostics |
//! | `ping`            | — (liveness probe; answered inline, never queued) |
//! | `stats`           | — |
//! | `shutdown`        | — |
//!
//! Request lines are read through a [`FrameReader`], which enforces a
//! maximum frame length (an adversarial client cannot force unbounded
//! buffering — the reply is a typed `frame_too_large`) and an idle
//! deadline (a slow-loris client that stalls mid-line gets a typed
//! `idle_timeout` and its connection back).

use linguist_eval::batch::FailureKind;
use linguist_eval::machine::EvalError;
use linguist_frontend::translate::TranslateError;
use linguist_support::json::Json;
use std::io::Read;

use crate::store::LoadError;

/// How a request names the grammar it wants to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GrammarRef {
    /// A handle from an earlier `load_grammar` reply (16-hex key).
    Handle(String),
    /// Inline source (load-or-hit by content hash).
    Source {
        /// The grammar text.
        source: String,
        /// Optional bundled-scanner binding.
        scanner: Option<String>,
    },
}

/// The unit of translation work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Work {
    /// Concrete input text — requires the grammar to have a bound
    /// scanner.
    Input(String),
    /// Synthesize a derivation of roughly this many nodes and evaluate
    /// it (works for any grammar; mirrors the profiler's dynamic half).
    Budget(usize),
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile a grammar into the session cache and return its handle.
    LoadGrammar {
        /// The grammar text.
        source: String,
        /// Optional bundled-scanner binding.
        scanner: Option<String>,
        /// Optional display name for stats.
        name: Option<String>,
    },
    /// Run one translation.
    Translate {
        /// Which grammar.
        grammar: GrammarRef,
        /// What to translate.
        work: Work,
        /// Per-request wall-clock ceiling (milliseconds), inclusive of
        /// queue wait.
        deadline_ms: Option<u64>,
        /// Test support: `"panic"` makes the job panic inside the
        /// worker, exercising the typed `panicked` reply.
        fault: Option<String>,
    },
    /// Run many translations of one grammar through the pool.
    TranslateBatch {
        /// Which grammar.
        grammar: GrammarRef,
        /// The jobs, in reply order.
        jobs: Vec<Work>,
        /// Per-job wall-clock ceiling (milliseconds).
        deadline_ms: Option<u64>,
    },
    /// Run the grammar lints and return coded `AG0xx` diagnostics.
    Check {
        /// Which grammar.
        grammar: GrammarRef,
    },
    /// Liveness probe: answered `{"ok":true}` inline, never queued.
    /// This is what the router's health checker sends.
    Ping,
    /// Service counters, cache contents, queue depth, quantiles.
    Stats,
    /// Stop accepting, drain, exit.
    Shutdown,
}

impl Request {
    /// Parse one request line (already JSON-decoded).
    ///
    /// # Errors
    ///
    /// A human-readable message describing the malformation; the server
    /// wraps it in a `bad_request` reply.
    pub fn parse(j: &Json) -> Result<Request, String> {
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request has no `op` field")?;
        match op {
            "load_grammar" => Ok(Request::LoadGrammar {
                source: req_str(j, "source")?,
                scanner: opt_str(j, "scanner"),
                name: opt_str(j, "name"),
            }),
            "translate" => Ok(Request::Translate {
                grammar: grammar_ref(j)?,
                work: work(j)?,
                deadline_ms: j.get("deadline_ms").and_then(Json::as_u64),
                fault: opt_str(j, "fault"),
            }),
            "translate_batch" => {
                let jobs = j
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or("translate_batch needs a `jobs` array")?
                    .iter()
                    .map(|item| match item {
                        Json::Str(s) => Ok(Work::Input(s.clone())),
                        _ => item
                            .as_u64()
                            .map(|n| Work::Budget(n as usize))
                            .ok_or_else(|| {
                                "each job must be an input string or a budget number".to_string()
                            }),
                    })
                    .collect::<Result<Vec<Work>, String>>()?;
                Ok(Request::TranslateBatch {
                    grammar: grammar_ref(j)?,
                    jobs,
                    deadline_ms: j.get("deadline_ms").and_then(Json::as_u64),
                })
            }
            "check" => Ok(Request::Check {
                grammar: grammar_ref(j)?,
            }),
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{}`", other)),
        }
    }
}

fn req_str(j: &Json, field: &str) -> Result<String, String> {
    j.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{}`", field))
}

fn opt_str(j: &Json, field: &str) -> Option<String> {
    j.get(field).and_then(Json::as_str).map(str::to_string)
}

fn grammar_ref(j: &Json) -> Result<GrammarRef, String> {
    match (opt_str(j, "grammar"), opt_str(j, "source")) {
        (Some(handle), None) => Ok(GrammarRef::Handle(handle)),
        (None, Some(source)) => Ok(GrammarRef::Source {
            source,
            scanner: opt_str(j, "scanner"),
        }),
        (Some(_), Some(_)) => Err("give `grammar` or `source`, not both".to_string()),
        (None, None) => Err("request names no grammar (`grammar` or `source`)".to_string()),
    }
}

fn work(j: &Json) -> Result<Work, String> {
    match (opt_str(j, "input"), j.get("budget").and_then(Json::as_u64)) {
        (Some(input), None) => Ok(Work::Input(input)),
        (None, Some(n)) => Ok(Work::Budget(n as usize)),
        (Some(_), Some(_)) => Err("give `input` or `budget`, not both".to_string()),
        (None, None) => Err("translate needs `input` text or a `budget`".to_string()),
    }
}

/// A success reply with the given extra fields.
pub fn ok_reply(fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![("ok".to_string(), Json::Bool(true))];
    obj.extend(fields);
    Json::Obj(obj)
}

/// A failure reply: `{"ok":false,"error":{"kind":…,"message":…}}`.
pub fn error_reply(kind: &str, message: &str) -> Json {
    error_reply_with(kind, message, vec![])
}

/// [`error_reply`] with extra structured fields inside `error` (e.g.
/// the failing frontend `stage` on a compile error).
pub fn error_reply_with(kind: &str, message: &str, extra: Vec<(String, Json)>) -> Json {
    let mut error = vec![
        ("kind".to_string(), Json::str(kind)),
        ("message".to_string(), Json::str(message)),
    ];
    error.extend(extra);
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Obj(error)),
    ])
}

/// Service-level error kinds (the evaluation-level ones are
/// [`FailureKind::as_str`]).
pub mod kind {
    /// The job queue was full; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// No resident grammar has the requested handle.
    pub const GRAMMAR_NOT_FOUND: &str = "grammar_not_found";
    /// The request line did not parse or is self-contradictory.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The frontend rejected the grammar.
    pub const COMPILE: &str = "compile";
    /// Input failed to scan.
    pub const SCAN: &str = "scan";
    /// Input failed to parse.
    pub const PARSE: &str = "parse";
    /// The grammar's CFG is not LALR(1).
    pub const TABLE: &str = "table";
    /// A scanner token kind matched no terminal.
    pub const UNBOUND_TOKEN: &str = "unbound_token";
    /// `LoadGrammar` named a scanner the service does not bundle.
    pub const UNKNOWN_SCANNER: &str = "unknown_scanner";
    /// The service is draining; no new work is accepted.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// A request line exceeded the frame-length bound.
    pub const FRAME_TOO_LARGE: &str = "frame_too_large";
    /// The connection stalled mid-frame past the idle deadline.
    pub const IDLE_TIMEOUT: &str = "idle_timeout";
    /// Every candidate shard for the request is ejected or has an open
    /// circuit breaker (router-level).
    pub const SHARD_UNAVAILABLE: &str = "shard_unavailable";
}

/// Whether an `error.kind` marks a *transient* condition that an
/// idempotent request may safely retry against another replica.
///
/// Deliberately conservative: admission-control rejections and drains
/// are transient; evaluation failures (`parse`, `func`, `panicked`, …)
/// are deterministic for the same request and would fail identically
/// elsewhere, and a `deadline` means the request's own budget is spent.
pub fn retryable_kind(kind: &str) -> bool {
    matches!(
        kind,
        kind::OVERLOADED | kind::SHUTTING_DOWN | kind::SHARD_UNAVAILABLE
    )
}

/// The stable error kind for an evaluation failure.
pub fn eval_error_kind(e: &EvalError) -> &'static str {
    FailureKind::of(e).as_str()
}

/// The stable error kind for a translation failure.
pub fn translate_error_kind(e: &TranslateError) -> &'static str {
    match e {
        TranslateError::Table(_) => kind::TABLE,
        TranslateError::Scan(_) => kind::SCAN,
        TranslateError::UnboundToken { .. } => kind::UNBOUND_TOKEN,
        TranslateError::Parse(_) => kind::PARSE,
        TranslateError::Eval(e) => eval_error_kind(e),
    }
}

/// The stable error kind for a session-cache load failure.
pub fn load_error_kind(e: &LoadError) -> &'static str {
    match e {
        LoadError::Compile(_) => kind::COMPILE,
        LoadError::Bind(te) => translate_error_kind(te),
        LoadError::UnknownScanner(_) => kind::UNKNOWN_SCANNER,
    }
}

/// Structured detail for a load failure: a `compile` error carries the
/// failing frontend stage (`syntax`/`lower`/`analysis`/`panicked`, from
/// [`DriverError::kind`](linguist_frontend::driver::DriverError::kind))
/// so clients can tell a fixable grammar from a toolchain defect
/// without parsing prose. The wire `error.kind` stays `compile`.
pub fn load_error_detail(e: &LoadError) -> Vec<(String, Json)> {
    match e {
        LoadError::Compile(d) => vec![("stage".to_string(), Json::str(d.kind()))],
        LoadError::Bind(_) | LoadError::UnknownScanner(_) => vec![],
    }
}

/// Default frame-length bound: far above any real grammar source, far
/// below "the client streams garbage until the daemon OOMs".
pub const DEFAULT_MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Why [`FrameReader::read_frame`] stopped without a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream between frames (normal hangup).
    Eof,
    /// The stream ended mid-frame (client died half-written).
    TruncatedFrame,
    /// The accumulating line crossed the length bound with no newline
    /// in sight: reply `frame_too_large` and close, there is no way to
    /// resynchronize.
    TooLarge {
        /// The enforced bound, for the diagnostic.
        limit: usize,
    },
    /// No bytes arrived within the idle deadline. `mid_frame` says
    /// whether a partial request was pending (slow-loris) or the
    /// connection was simply quiet.
    IdleTimeout {
        /// Partial request bytes were buffered when the deadline hit.
        mid_frame: bool,
    },
    /// The frame is not UTF-8.
    BadUtf8,
    /// Any other transport failure.
    Io(std::io::Error),
}

/// A bounded, deadline-aware line reader for the wire protocol.
///
/// Reads newline-delimited frames from a raw stream whose read timeout
/// the caller has set to the desired idle deadline: a `WouldBlock` /
/// `TimedOut` read is reported as [`FrameError::IdleTimeout`] rather
/// than retried forever, and a line that outgrows `max_len` is cut off
/// with [`FrameError::TooLarge`] instead of buffering without bound.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    max_len: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap `inner`, enforcing `max_len` bytes per frame (clamped to at
    /// least 1).
    pub fn new(inner: R, max_len: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            max_len: max_len.max(1),
        }
    }

    /// The wrapped stream (for writing replies on a duplex socket).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Read one `\n`-terminated frame, without the terminator.
    ///
    /// # Errors
    ///
    /// See [`FrameError`]. After `TooLarge` the stream cannot be
    /// resynchronized and must be closed.
    pub fn read_frame(&mut self) -> Result<String, FrameError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut frame = std::mem::replace(&mut self.buf, rest);
                frame.pop(); // the newline
                if frame.last() == Some(&b'\r') {
                    frame.pop();
                }
                return String::from_utf8(frame).map_err(|_| FrameError::BadUtf8);
            }
            if self.buf.len() > self.max_len {
                return Err(FrameError::TooLarge {
                    limit: self.max_len,
                });
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::Eof
                    } else {
                        FrameError::TruncatedFrame
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(FrameError::IdleTimeout {
                        mid_frame: !self.buf.is_empty(),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Request, String> {
        Request::parse(&Json::parse(line).expect("test line is JSON"))
    }

    #[test]
    fn load_grammar_round_trips() {
        let r = parse(r#"{"op":"load_grammar","source":"grammar G ;","scanner":"calc"}"#).unwrap();
        assert_eq!(
            r,
            Request::LoadGrammar {
                source: "grammar G ;".to_string(),
                scanner: Some("calc".to_string()),
                name: None,
            }
        );
    }

    #[test]
    fn translate_by_handle_with_budget() {
        let r =
            parse(r#"{"op":"translate","grammar":"00ff","budget":64,"deadline_ms":250}"#).unwrap();
        assert_eq!(
            r,
            Request::Translate {
                grammar: GrammarRef::Handle("00ff".to_string()),
                work: Work::Budget(64),
                deadline_ms: Some(250),
                fault: None,
            }
        );
    }

    #[test]
    fn translate_by_source_with_input() {
        let r =
            parse(r#"{"op":"translate","source":"grammar G ;","scanner":"calc","input":"1+2"}"#)
                .unwrap();
        match r {
            Request::Translate {
                grammar: GrammarRef::Source { source, scanner },
                work: Work::Input(input),
                ..
            } => {
                assert_eq!(source, "grammar G ;");
                assert_eq!(scanner.as_deref(), Some("calc"));
                assert_eq!(input, "1+2");
            }
            other => panic!("wrong parse: {:?}", other),
        }
    }

    #[test]
    fn batch_jobs_mix_inputs_and_budgets() {
        let r =
            parse(r#"{"op":"translate_batch","grammar":"00ff","jobs":["1+2",32,"3*4"]}"#).unwrap();
        match r {
            Request::TranslateBatch { jobs, .. } => assert_eq!(
                jobs,
                vec![
                    Work::Input("1+2".to_string()),
                    Work::Budget(32),
                    Work::Input("3*4".to_string()),
                ]
            ),
            other => panic!("wrong parse: {:?}", other),
        }
    }

    #[test]
    fn check_parses_both_grammar_addressings() {
        let r = parse(r#"{"op":"check","grammar":"00ff"}"#).unwrap();
        assert_eq!(
            r,
            Request::Check {
                grammar: GrammarRef::Handle("00ff".to_string()),
            }
        );
        let r = parse(r#"{"op":"check","source":"grammar G ;"}"#).unwrap();
        assert!(matches!(
            r,
            Request::Check {
                grammar: GrammarRef::Source { .. }
            }
        ));
        assert!(parse(r#"{"op":"check"}"#)
            .unwrap_err()
            .contains("names no grammar"));
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(parse(r#"{"op":"nope"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse(r#"{"x":1}"#).unwrap_err().contains("op"));
        assert!(parse(r#"{"op":"translate","grammar":"k"}"#)
            .unwrap_err()
            .contains("input"));
        assert!(
            parse(r#"{"op":"translate","grammar":"k","source":"s","budget":1}"#)
                .unwrap_err()
                .contains("not both")
        );
    }

    #[test]
    fn reply_shapes_are_stable() {
        assert_eq!(
            error_reply("overloaded", "queue full").to_string(),
            r#"{"ok":false,"error":{"kind":"overloaded","message":"queue full"}}"#
        );
        let ok = ok_reply(vec![("grammar".to_string(), Json::str("00ff"))]).to_string();
        assert_eq!(ok, r#"{"ok":true,"grammar":"00ff"}"#);
    }

    #[test]
    fn ping_parses_and_retryability_is_conservative() {
        assert_eq!(parse(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert!(retryable_kind(kind::OVERLOADED));
        assert!(retryable_kind(kind::SHUTTING_DOWN));
        assert!(retryable_kind(kind::SHARD_UNAVAILABLE));
        for terminal in [
            "parse",
            "func",
            "panicked",
            "deadline",
            "compile",
            "bad_request",
        ] {
            assert!(!retryable_kind(terminal), "{} must not retry", terminal);
        }
    }

    #[test]
    fn frame_reader_splits_lines_and_keeps_leftovers() {
        let data = b"{\"op\":\"ping\"}\r\n{\"op\":\"stats\"}\npartial".to_vec();
        let mut r = FrameReader::new(&data[..], 1024);
        assert_eq!(r.read_frame().unwrap(), "{\"op\":\"ping\"}");
        assert_eq!(r.read_frame().unwrap(), "{\"op\":\"stats\"}");
        assert!(matches!(
            r.read_frame().unwrap_err(),
            FrameError::TruncatedFrame
        ));
    }

    #[test]
    fn frame_reader_rejects_oversized_frames_without_buffering_them() {
        // 64 bytes of limit, a 200-byte line: the reader must fail long
        // before a newline ever shows up.
        let data = [b'a'; 200];
        let mut r = FrameReader::new(&data[..], 64);
        assert!(matches!(
            r.read_frame().unwrap_err(),
            FrameError::TooLarge { limit: 64 }
        ));
    }

    #[test]
    fn frame_reader_reports_clean_eof_between_frames() {
        let data = b"{\"op\":\"ping\"}\n".to_vec();
        let mut r = FrameReader::new(&data[..], 1024);
        assert_eq!(r.read_frame().unwrap(), "{\"op\":\"ping\"}");
        assert!(matches!(r.read_frame().unwrap_err(), FrameError::Eof));
    }

    #[test]
    fn eval_failure_kinds_reuse_the_batch_taxonomy() {
        let e = EvalError::Panicked("boom".to_string());
        assert_eq!(eval_error_kind(&e), "panicked");
        assert_eq!(FailureKind::parse("panicked"), Some(FailureKind::Panicked));
        let te = TranslateError::UnboundToken {
            kind: "X".to_string(),
        };
        assert_eq!(translate_error_kind(&te), kind::UNBOUND_TOKEN);
    }
}
