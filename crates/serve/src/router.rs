//! The router: the front process of a sharded serve topology.
//!
//! One `linguist router` stands in front of N `linguist serve` shards
//! and speaks the same newline-delimited JSON protocol on both sides,
//! so every existing client works unchanged. Requests are routed by
//! **consistent hashing on the grammar content-hash**: the 16-hex
//! grammar handle *is* [`grammar_key`](crate::store::grammar_key) of
//! the source text, so a by-handle request and a by-source request for
//! the same grammar land on the same shard, and each shard's session
//! cache stays hot for its slice of the key space.
//!
//! Failure handling is the point:
//!
//! * **Active health checks** — a background thread pings every shard
//!   each `health_interval`; a failed probe *ejects* the shard from
//!   routing, a succeeding probe on an ejected shard *re-admits* it —
//!   but only after **warm-up replication**: every cached grammar
//!   source whose ring owner is the recovering shard is re-loaded into
//!   it first, so the shard comes back warm, not cold.
//! * **Passive failure detection** — a per-shard circuit breaker
//!   (closed → open → half-open) trips after `breaker_threshold`
//!   consecutive transport failures, so a freshly dead shard stops
//!   receiving traffic *between* health ticks; after
//!   `breaker_cooldown` one half-open probe request is let through.
//! * **Retry with failover** — `translate`, `translate_batch`, `check`
//!   and `load_grammar` are idempotent (evaluation is pure, loading is
//!   content-addressed), so a transport failure or a transient typed
//!   error ([`retryable_kind`]) moves the request to the next shard on
//!   the ring with capped exponential backoff, up to `max_attempts`.
//!   Deterministic failures (`parse`, `panicked`, `deadline`, …) are
//!   returned as-is — they would fail identically anywhere.
//! * **Handle rehydration** — the router remembers the source text of
//!   every grammar loaded through it (a bounded LRU). When failover
//!   sends a by-handle request to a shard that never compiled that
//!   grammar, the shard's `grammar_not_found` is repaired in place:
//!   the router rewrites the request with the cached source (same
//!   content hash ⇒ same handle) and retries, so clients never see a
//!   routing-induced miss.
//! * **Typed degradation** — when every candidate shard is ejected or
//!   breaker-open the client gets a typed `shard_unavailable` reply,
//!   never a hung connection.
//!
//! A `shutdown` request (or SIGTERM via
//! [`RouterState::begin_drain`]) drains the router exactly like the
//! single daemon: stop accepting, answer in-flight requests, exit.
//! Shards are deliberately left running — they may serve other
//! routers.

use linguist_support::json::Json;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::hist::LatencyHistogram;
use crate::proto::{
    error_reply, kind, ok_reply, retryable_kind, FrameError, FrameReader, GrammarRef, Request,
};
use crate::store::{fnv1a, grammar_key};

/// Virtual nodes per shard on the hash ring: enough to keep the key
/// space within a few percent of even for small shard counts.
const VNODES: usize = 40;

/// How a shard is addressed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7001`.
    Tcp(String),
}

impl ShardAddr {
    /// Parse `unix:PATH`, `tcp:ADDR`, a bare `/path` (Unix), or a bare
    /// `host:port` (TCP).
    ///
    /// # Errors
    ///
    /// A human-readable message for anything else.
    pub fn parse(s: &str) -> Result<ShardAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(ShardAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(ShardAddr::Tcp(addr.to_string()))
        } else if s.starts_with('/') {
            Ok(ShardAddr::Unix(PathBuf::from(s)))
        } else if s.contains(':') {
            Ok(ShardAddr::Tcp(s.to_string()))
        } else {
            Err(format!(
                "shard address `{}` is neither unix:PATH, tcp:ADDR, /path, nor host:port",
                s
            ))
        }
    }

    /// Open a fresh connection with `timeout` as the connect (TCP) and
    /// read/write deadline.
    fn connect(&self, timeout: Duration) -> std::io::Result<ShardConn> {
        match self {
            ShardAddr::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))?;
                Ok(ShardConn::Unix(s))
            }
            ShardAddr::Tcp(addr) => {
                let resolved = addr
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| std::io::Error::other("address resolves to nothing"))?;
                let s = TcpStream::connect_timeout(&resolved, timeout)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))?;
                Ok(ShardConn::Tcp(s))
            }
        }
    }
}

impl std::fmt::Display for ShardAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ShardAddr::Tcp(a) => write!(f, "tcp:{}", a),
        }
    }
}

enum ShardConn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl std::io::Read for ShardConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ShardConn::Unix(s) => s.read(buf),
            ShardConn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ShardConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ShardConn::Unix(s) => s.write(buf),
            ShardConn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ShardConn::Unix(s) => s.flush(),
            ShardConn::Tcp(s) => s.flush(),
        }
    }
}

/// How to run the router.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind a Unix-domain socket here for clients.
    pub unix_path: Option<PathBuf>,
    /// Bind a TCP listener here for clients (keep it loopback).
    pub tcp_addr: Option<String>,
    /// The backend shards, in ring order.
    pub shards: Vec<ShardAddr>,
    /// Active health-check period. Ejection latency is bounded by one
    /// interval plus the probe timeout.
    pub health_interval: Duration,
    /// Deadline for one health probe (connect + ping + reply).
    pub probe_timeout: Duration,
    /// Deadline for one forwarded attempt (connect + request + reply).
    pub attempt_timeout: Duration,
    /// Total attempts per request (first try + retries).
    pub max_attempts: usize,
    /// First retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive transport failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks traffic before one half-open
    /// probe is allowed through.
    pub breaker_cooldown: Duration,
    /// Bounded count of grammar sources remembered for rehydration and
    /// warm-up replication.
    pub source_cache: usize,
    /// Frame bound for client connections (same meaning as the
    /// server's).
    pub max_frame_len: usize,
    /// Idle read deadline for client connections.
    pub idle_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            unix_path: None,
            tcp_addr: None,
            shards: Vec::new(),
            health_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            attempt_timeout: Duration::from_secs(5),
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            source_cache: 64,
            max_frame_len: crate::proto::DEFAULT_MAX_FRAME_LEN,
            idle_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// The circuit-breaker state machine. Transitions happen on the
/// request path (passive detection); the health checker resets it on
/// re-admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Breaker {
    /// Traffic flows; `fails` consecutive transport failures so far.
    Closed { fails: u32 },
    /// No traffic until `until`.
    Open { until: Instant },
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

/// Per-shard live state and lifetime counters.
pub struct ShardState {
    addr: ShardAddr,
    /// Verdict of the *active* health checker.
    healthy: AtomicBool,
    /// Verdict of *passive* failure detection.
    breaker: Mutex<Breaker>,
    requests: AtomicU64,
    failures: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    replicated: AtomicU64,
}

impl ShardState {
    fn new(addr: ShardAddr) -> ShardState {
        ShardState {
            addr,
            // Optimistic start: the first health tick corrects this.
            healthy: AtomicBool::new(true),
            breaker: Mutex::new(Breaker::Closed { fails: 0 }),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            replicated: AtomicU64::new(0),
        }
    }

    /// May a request be sent right now? Open → HalfOpen transition
    /// happens here, so call this only when about to actually use the
    /// shard.
    fn try_admit(&self) -> bool {
        if !self.healthy.load(Ordering::SeqCst) {
            return false;
        }
        let mut b = self.breaker.lock().expect("breaker poisoned");
        match *b {
            Breaker::Closed { .. } => true,
            Breaker::Open { until } => {
                if Instant::now() >= until {
                    *b = Breaker::HalfOpen;
                    true // this caller is the half-open probe
                } else {
                    false
                }
            }
            Breaker::HalfOpen => false, // probe already in flight
        }
    }

    /// The shard answered (even with a typed error): it is alive.
    fn note_success(&self) {
        *self.breaker.lock().expect("breaker poisoned") = Breaker::Closed { fails: 0 };
    }

    /// Transport-level failure (connect refused, timeout, garbage).
    fn note_failure(&self, threshold: u32, cooldown: Duration) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut b = self.breaker.lock().expect("breaker poisoned");
        *b = match *b {
            Breaker::Closed { fails } if fails + 1 >= threshold => Breaker::Open {
                until: Instant::now() + cooldown,
            },
            Breaker::Closed { fails } => Breaker::Closed { fails: fails + 1 },
            Breaker::HalfOpen | Breaker::Open { .. } => Breaker::Open {
                until: Instant::now() + cooldown,
            },
        };
    }

    fn breaker_name(&self) -> &'static str {
        match *self.breaker.lock().expect("breaker poisoned") {
            Breaker::Closed { .. } => "closed",
            Breaker::Open { .. } => "open",
            Breaker::HalfOpen => "half_open",
        }
    }

    /// The shard's address, for logs and stats.
    pub fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// Is the shard currently routable by the active health checker?
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Requests forwarded to this shard (attempts, not successes).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Transport-level failures observed against this shard.
    pub fn failure_count(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Times the health checker ejected this shard.
    pub fn ejection_count(&self) -> u64 {
        self.ejections.load(Ordering::Relaxed)
    }

    /// Times an ejected shard was re-admitted after a passing probe.
    pub fn readmission_count(&self) -> u64 {
        self.readmissions.load(Ordering::Relaxed)
    }

    /// Grammars replicated into this shard on re-admission.
    pub fn replicated_count(&self) -> u64 {
        self.replicated.load(Ordering::Relaxed)
    }
}

/// One remembered grammar source, for rehydration and replication.
#[derive(Clone, Debug)]
struct CachedSource {
    key: String,
    source: String,
    scanner: Option<String>,
    name: Option<String>,
}

/// A bounded LRU of grammar sources keyed by content hash.
struct SourceCache {
    entries: Vec<CachedSource>,
    capacity: usize,
}

impl SourceCache {
    fn new(capacity: usize) -> SourceCache {
        SourceCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    fn remember(&mut self, cs: CachedSource) {
        if let Some(pos) = self.entries.iter().position(|e| e.key == cs.key) {
            let mut e = self.entries.remove(pos);
            // A later load may attach a display name the first lacked.
            if e.name.is_none() {
                e.name = cs.name;
            }
            self.entries.push(e);
        } else {
            self.entries.push(cs);
            if self.entries.len() > self.capacity {
                self.entries.remove(0);
            }
        }
    }

    fn get(&mut self, key: &str) -> Option<CachedSource> {
        let pos = self.entries.iter().position(|e| e.key == key)?;
        let e = self.entries.remove(pos);
        self.entries.push(e.clone());
        Some(e)
    }

    fn snapshot(&self) -> Vec<CachedSource> {
        self.entries.clone()
    }
}

/// Router-level request counters.
struct RouterMetrics {
    started: Instant,
    requests: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    rehydrations: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

/// Everything the router's connection threads share.
pub struct RouterState {
    cfg: RouterConfig,
    shards: Vec<Arc<ShardState>>,
    /// Sorted (ring point → shard index).
    ring: Vec<(u64, usize)>,
    sources: Mutex<SourceCache>,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
    unix_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl RouterState {
    /// Has a drain been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begin a graceful drain from outside the protocol (SIGTERM).
    pub fn begin_drain(&self) {
        request_drain(self);
    }

    /// Per-shard state snapshots, ring order.
    pub fn shards(&self) -> &[Arc<ShardState>] {
        &self.shards
    }

    /// Grammar sources currently remembered for rehydration.
    pub fn cached_sources(&self) -> usize {
        self.sources.lock().expect("sources poisoned").entries.len()
    }

    /// Ring lookup: candidate shard indexes for `key`, preference
    /// order, each shard once.
    fn candidates(&self, key: &str) -> Vec<usize> {
        let h = fnv1a(&[key.as_bytes()]);
        let start = self.ring.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(self.shards.len());
        for i in 0..self.ring.len() {
            let (_, shard) = self.ring[(start + i) % self.ring.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == self.shards.len() {
                    break;
                }
            }
        }
        out
    }
}

/// The router daemon entry point.
pub enum Router {}

impl Router {
    /// Bind the client listeners, start the health checker, and serve.
    ///
    /// # Errors
    ///
    /// Bind failures; `InvalidInput` when no listener or no shard is
    /// configured.
    pub fn start(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
        if cfg.unix_path.is_none() && cfg.tcp_addr.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router config names no listener (unix_path or tcp_addr)",
            ));
        }
        if cfg.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router config names no shards",
            ));
        }
        let unix_listener = match &cfg.unix_path {
            Some(path) => {
                let _unused = std::fs::remove_file(path);
                Some(UnixListener::bind(path)?)
            }
            None => None,
        };
        let tcp_listener = match &cfg.tcp_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let shards: Vec<Arc<ShardState>> = cfg
            .shards
            .iter()
            .cloned()
            .map(|a| Arc::new(ShardState::new(a)))
            .collect();
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(shards.len() * VNODES);
        for (i, shard) in shards.iter().enumerate() {
            let addr = shard.addr.to_string();
            for v in 0..VNODES {
                let point = fnv1a(&[addr.as_bytes(), b"#", format!("{}", v).as_bytes()]);
                ring.push((point, i));
            }
        }
        ring.sort_unstable();
        let unix_path = cfg.unix_path.clone();
        let state = Arc::new(RouterState {
            sources: Mutex::new(SourceCache::new(cfg.source_cache)),
            metrics: RouterMetrics {
                started: Instant::now(),
                requests: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                rehydrations: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                latency: LatencyHistogram::new(),
            },
            shutdown: AtomicBool::new(false),
            unix_path,
            tcp_addr,
            shards,
            ring,
            cfg,
        });
        let mut threads = Vec::new();
        if let Some(listener) = unix_listener {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name("router-accept-unix".to_string())
                    .spawn(move || accept_unix(&listener, &state))?,
            );
        }
        if let Some(listener) = tcp_listener {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name("router-accept-tcp".to_string())
                    .spawn(move || accept_tcp(&listener, &state))?,
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name("router-health".to_string())
                    .spawn(move || health_loop(&state))?,
            );
        }
        Ok(RouterHandle { state, threads })
    }
}

/// A running router. Dropping it stops the service.
pub struct RouterHandle {
    state: Arc<RouterState>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound Unix socket path, if configured.
    pub fn unix_path(&self) -> Option<&Path> {
        self.state.unix_path.as_deref()
    }

    /// The bound TCP address, if configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.state.tcp_addr
    }

    /// The shared state (counters and shard views, for tests).
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Block until a `shutdown` request (or `begin_drain`) stops the
    /// router.
    pub fn wait(mut self) {
        self.join();
    }

    /// Stop the router from outside.
    pub fn shutdown(mut self) {
        request_drain(&self.state);
        self.join();
    }

    fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _unused = h.join();
        }
        if let Some(path) = &self.state.unix_path {
            let _unused = std::fs::remove_file(path);
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            request_drain(&self.state);
            self.join();
        }
    }
}

/// Flip the shutdown flag and poke the listeners awake.
fn request_drain(state: &RouterState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Some(path) = &state.unix_path {
        let _unused = UnixStream::connect(path);
    }
    if let Some(addr) = state.tcp_addr {
        let _unused = TcpStream::connect(addr);
    }
}

fn accept_unix(listener: &UnixListener, state: &Arc<RouterState>) {
    for conn in listener.incoming() {
        if state.is_shutting_down() {
            return;
        }
        if let Ok(stream) = conn {
            let state = Arc::clone(state);
            let _unused = std::thread::Builder::new()
                .name("router-conn".to_string())
                .spawn(move || {
                    let _unused = stream.set_read_timeout(state.cfg.idle_timeout);
                    client_conn(stream, &state);
                });
        }
    }
}

fn accept_tcp(listener: &TcpListener, state: &Arc<RouterState>) {
    for conn in listener.incoming() {
        if state.is_shutting_down() {
            return;
        }
        if let Ok(stream) = conn {
            let state = Arc::clone(state);
            let _unused = std::thread::Builder::new()
                .name("router-conn".to_string())
                .spawn(move || {
                    let _unused = stream.set_read_timeout(state.cfg.idle_timeout);
                    client_conn(stream, &state);
                });
        }
    }
}

/// One client session against the router: same framing discipline as
/// the single daemon's `serve_conn`.
fn client_conn<S: std::io::Read + Write>(stream: S, state: &Arc<RouterState>) {
    let mut frames = FrameReader::new(stream, state.cfg.max_frame_len);
    loop {
        let line = match frames.read_frame() {
            Ok(line) => line,
            Err(FrameError::TooLarge { limit }) => {
                let reply = error_reply(
                    kind::FRAME_TOO_LARGE,
                    &format!("request line exceeds the {}-byte frame bound", limit),
                );
                let w = frames.get_mut();
                let _unused = writeln!(w, "{}", reply).and_then(|()| w.flush());
                return;
            }
            Err(FrameError::IdleTimeout { mid_frame }) => {
                if mid_frame {
                    let reply = error_reply(
                        kind::IDLE_TIMEOUT,
                        "connection stalled mid-request past the idle deadline",
                    );
                    let w = frames.get_mut();
                    let _unused = writeln!(w, "{}", reply).and_then(|()| w.flush());
                }
                return;
            }
            Err(FrameError::BadUtf8) => {
                let reply = error_reply(kind::BAD_REQUEST, "request line is not UTF-8");
                let w = frames.get_mut();
                if writeln!(w, "{}", reply).and_then(|()| w.flush()).is_err() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, stop) = route_line(&line, state);
        let w = frames.get_mut();
        if writeln!(w, "{}", reply).and_then(|()| w.flush()).is_err() {
            return;
        }
        if stop {
            request_drain(state);
            return;
        }
    }
}

/// Answer one request line: locally (`ping`/`stats`/`shutdown`) or by
/// forwarding to a shard with retry/failover. The bool says "drain
/// after replying".
fn route_line(line: &str, state: &Arc<RouterState>) -> (Json, bool) {
    let parsed = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return (
                error_reply(kind::BAD_REQUEST, &format!("request is not JSON: {}", e)),
                false,
            );
        }
    };
    let request = match Request::parse(&parsed) {
        Ok(r) => r,
        Err(msg) => {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return (error_reply(kind::BAD_REQUEST, &msg), false);
        }
    };
    if state.is_shutting_down() {
        return (
            error_reply(
                kind::SHUTTING_DOWN,
                "the router is draining and accepts no new work",
            ),
            false,
        );
    }
    match &request {
        Request::Ping => return (ok_reply(vec![]), false),
        Request::Stats => return (router_stats(state), false),
        Request::Shutdown => return (ok_reply(vec![]), true),
        _ => {}
    }
    // Everything else routes by grammar key. Remember inline sources
    // as we see them — they are the replication/rehydration corpus.
    let key = match routing_key(&request, state) {
        Some(k) => k,
        None => {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return (
                error_reply(kind::BAD_REQUEST, "request names no grammar to route by"),
                false,
            );
        }
    };
    let started = Instant::now();
    state.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let reply = forward_with_failover(state, line, &parsed, &key);
    state.metrics.latency.record(started.elapsed());
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }
    (reply, false)
}

/// The grammar content-hash a request routes by, caching inline
/// sources along the way.
fn routing_key(request: &Request, state: &Arc<RouterState>) -> Option<String> {
    let remember = |key: &str, source: &str, scanner: &Option<String>, name: Option<&str>| {
        state
            .sources
            .lock()
            .expect("sources poisoned")
            .remember(CachedSource {
                key: key.to_string(),
                source: source.to_string(),
                scanner: scanner.clone(),
                name: name.map(str::to_string),
            });
    };
    let of_ref = |gref: &GrammarRef| match gref {
        GrammarRef::Handle(h) => h.clone(),
        GrammarRef::Source { source, scanner } => {
            let key = grammar_key(source, scanner.as_deref());
            remember(&key, source, scanner, None);
            key
        }
    };
    match request {
        Request::LoadGrammar {
            source,
            scanner,
            name,
        } => {
            let key = grammar_key(source, scanner.as_deref());
            remember(&key, source, scanner, name.as_deref());
            Some(key)
        }
        Request::Translate { grammar, .. }
        | Request::TranslateBatch { grammar, .. }
        | Request::Check { grammar } => Some(of_ref(grammar)),
        Request::Ping | Request::Stats | Request::Shutdown => None,
    }
}

/// Exponential backoff for retry `n` (1-based), capped.
fn backoff(cfg: &RouterConfig, n: u32) -> Duration {
    let mult = 1u32 << n.min(10).saturating_sub(1);
    cfg.backoff_base.saturating_mul(mult).min(cfg.backoff_cap)
}

/// Forward one request line with retry, failover, and rehydration.
fn forward_with_failover(state: &Arc<RouterState>, line: &str, parsed: &Json, key: &str) -> Json {
    let cfg = &state.cfg;
    let candidates = state.candidates(key);
    let n = candidates.len();
    let mut scan = 0usize; // rotates through candidates across attempts
    let mut last_reply: Option<Json> = None;
    let mut last_transport: Option<String> = None;
    for attempt in 0..cfg.max_attempts {
        // Next routable candidate, one full cycle at most.
        let mut chosen = None;
        for k in 0..n {
            let idx = candidates[(scan + k) % n];
            if state.shards[idx].try_admit() {
                chosen = Some((idx, (scan + k) % n));
                break;
            }
        }
        let Some((idx, pos)) = chosen else { break };
        scan = pos + 1;
        if idx != candidates[0] {
            state.metrics.failovers.fetch_add(1, Ordering::Relaxed);
        }
        if attempt > 0 {
            state.metrics.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff(cfg, attempt as u32));
        }
        let shard = &state.shards[idx];
        shard.requests.fetch_add(1, Ordering::Relaxed);
        match forward_once(&shard.addr, line, cfg.attempt_timeout, cfg.max_frame_len) {
            Ok(reply) => {
                shard.note_success();
                let err_kind = reply
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
                match err_kind.as_deref() {
                    None => return reply, // ok:true
                    Some(k) if k == kind::GRAMMAR_NOT_FOUND => {
                        // Failover sent a handle to a shard that never
                        // compiled it: rehydrate from the source cache
                        // and retry this same shard, which warms it.
                        let cached = state.sources.lock().expect("sources poisoned").get(key);
                        if let Some(cs) = cached {
                            if let Some(rewritten) = rehydrate(parsed, &cs) {
                                state.metrics.rehydrations.fetch_add(1, Ordering::Relaxed);
                                match forward_once(
                                    &shard.addr,
                                    &rewritten,
                                    cfg.attempt_timeout,
                                    cfg.max_frame_len,
                                ) {
                                    Ok(r2) => return r2,
                                    Err(e) => {
                                        shard.note_failure(
                                            cfg.breaker_threshold,
                                            cfg.breaker_cooldown,
                                        );
                                        last_transport = Some(e.to_string());
                                        continue;
                                    }
                                }
                            }
                        }
                        return reply; // nothing cached: the miss is real
                    }
                    Some(k) if retryable_kind(k) => {
                        // Typed pushback (overloaded / draining): try
                        // the next replica.
                        last_reply = Some(reply);
                        continue;
                    }
                    Some(_) => return reply, // deterministic failure
                }
            }
            Err(e) => {
                shard.note_failure(cfg.breaker_threshold, cfg.breaker_cooldown);
                last_transport = Some(format!("{}: {}", shard.addr, e));
                continue;
            }
        }
    }
    if let Some(reply) = last_reply {
        return reply;
    }
    error_reply(
        kind::SHARD_UNAVAILABLE,
        &last_transport.map_or_else(
            || "every candidate shard is ejected or breaker-open".to_string(),
            |t| format!("no shard could serve the request (last failure: {})", t),
        ),
    )
}

/// One attempt: fresh connection, one request line out, one reply line
/// in, parsed. Any transport trouble (refused, timeout, truncated or
/// garbled reply) is an `Err`.
fn forward_once(
    addr: &ShardAddr,
    line: &str,
    timeout: Duration,
    max_frame_len: usize,
) -> std::io::Result<Json> {
    let mut conn = addr.connect(timeout)?;
    writeln!(conn, "{}", line.trim_end())?;
    conn.flush()?;
    let mut frames = FrameReader::new(conn, max_frame_len);
    let reply = match frames.read_frame() {
        Ok(l) => l,
        Err(FrameError::Io(e)) => return Err(e),
        Err(e) => {
            return Err(std::io::Error::other(format!(
                "shard reply did not arrive cleanly: {:?}",
                e
            )))
        }
    };
    Json::parse(&reply)
        .map_err(|e| std::io::Error::other(format!("shard reply is not JSON: {}", e)))
}

/// Rewrite a by-handle request into a by-source one from the cache.
/// Same content hash ⇒ same handle on the shard.
fn rehydrate(parsed: &Json, cs: &CachedSource) -> Option<String> {
    let Json::Obj(fields) = parsed else {
        return None;
    };
    let mut out: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "grammar" && k != "source" && k != "scanner")
        .cloned()
        .collect();
    out.push(("source".to_string(), Json::str(&cs.source)));
    if let Some(sc) = &cs.scanner {
        out.push(("scanner".to_string(), Json::str(sc)));
    }
    Some(Json::Obj(out).to_string())
}

/// The router's own `stats` reply: routing counters plus a per-shard
/// table (clients wanting a *shard's* stats ask it directly).
fn router_stats(state: &Arc<RouterState>) -> Json {
    let m = &state.metrics;
    let quantile = |q: f64| match m.latency.quantile(q) {
        Some(d) => Json::Num(d.as_secs_f64() * 1e3),
        None => Json::Null,
    };
    let shards: Vec<Json> = state
        .shards
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("addr".to_string(), Json::str(&s.addr.to_string())),
                ("healthy".to_string(), Json::Bool(s.is_healthy())),
                ("breaker".to_string(), Json::str(s.breaker_name())),
                (
                    "requests".to_string(),
                    Json::int(s.requests.load(Ordering::Relaxed) as i64),
                ),
                (
                    "failures".to_string(),
                    Json::int(s.failures.load(Ordering::Relaxed) as i64),
                ),
                (
                    "ejections".to_string(),
                    Json::int(s.ejection_count() as i64),
                ),
                (
                    "readmissions".to_string(),
                    Json::int(s.readmission_count() as i64),
                ),
                (
                    "replicated".to_string(),
                    Json::int(s.replicated_count() as i64),
                ),
            ])
        })
        .collect();
    ok_reply(vec![
        ("role".to_string(), Json::str("router")),
        (
            "uptime_ms".to_string(),
            Json::Num(m.started.elapsed().as_secs_f64() * 1e3),
        ),
        (
            "requests".to_string(),
            Json::Obj(vec![
                (
                    "routed".to_string(),
                    Json::int(m.requests.load(Ordering::Relaxed) as i64),
                ),
                (
                    "retries".to_string(),
                    Json::int(m.retries.load(Ordering::Relaxed) as i64),
                ),
                (
                    "failovers".to_string(),
                    Json::int(m.failovers.load(Ordering::Relaxed) as i64),
                ),
                (
                    "rehydrations".to_string(),
                    Json::int(m.rehydrations.load(Ordering::Relaxed) as i64),
                ),
                (
                    "errors".to_string(),
                    Json::int(m.errors.load(Ordering::Relaxed) as i64),
                ),
                ("latency_p50_ms".to_string(), quantile(0.50)),
                ("latency_p99_ms".to_string(), quantile(0.99)),
                ("latency_p999_ms".to_string(), quantile(0.999)),
            ]),
        ),
        ("shards".to_string(), Json::Arr(shards)),
        (
            "cached_sources".to_string(),
            Json::int(state.cached_sources() as i64),
        ),
    ])
}

/// The active health checker: ping every shard each interval; eject on
/// failure, replicate-then-readmit on recovery.
fn health_loop(state: &Arc<RouterState>) {
    let cfg = &state.cfg;
    while !state.is_shutting_down() {
        for shard in &state.shards {
            if state.is_shutting_down() {
                return;
            }
            let alive = probe(&shard.addr, cfg.probe_timeout, cfg.max_frame_len);
            let was_healthy = shard.healthy.load(Ordering::SeqCst);
            match (was_healthy, alive) {
                (true, true) | (false, false) => {}
                (true, false) => {
                    shard.healthy.store(false, Ordering::SeqCst);
                    shard.ejections.fetch_add(1, Ordering::Relaxed);
                }
                (false, true) => {
                    // Warm the shard up BEFORE re-admitting it, so the
                    // first routed request after recovery hits a warm
                    // cache. Only the grammars this shard owns (or
                    // backs up) matter, but replicating the whole
                    // bounded cache is cheap and covers failover.
                    let corpus = state.sources.lock().expect("sources poisoned").snapshot();
                    let mut loaded = 0u64;
                    for cs in &corpus {
                        if replicate(&shard.addr, cs, cfg.attempt_timeout, cfg.max_frame_len) {
                            loaded += 1;
                        }
                    }
                    shard.replicated.fetch_add(loaded, Ordering::Relaxed);
                    *shard.breaker.lock().expect("breaker poisoned") = Breaker::Closed { fails: 0 };
                    shard.healthy.store(true, Ordering::SeqCst);
                    shard.readmissions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Sleep in short slices so a drain is honored promptly.
        let mut slept = Duration::ZERO;
        while slept < cfg.health_interval && !state.is_shutting_down() {
            let slice = Duration::from_millis(25).min(cfg.health_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One liveness probe: `{"op":"ping"}` answered `ok:true` within the
/// timeout.
fn probe(addr: &ShardAddr, timeout: Duration, max_frame_len: usize) -> bool {
    matches!(
        forward_once(addr, r#"{"op":"ping"}"#, timeout, max_frame_len),
        Ok(reply) if reply.get("ok").and_then(Json::as_bool) == Some(true)
    )
}

/// Push one cached grammar into a recovering shard.
fn replicate(addr: &ShardAddr, cs: &CachedSource, timeout: Duration, max_frame_len: usize) -> bool {
    let mut obj = vec![
        ("op".to_string(), Json::str("load_grammar")),
        ("source".to_string(), Json::str(&cs.source)),
    ];
    if let Some(sc) = &cs.scanner {
        obj.push(("scanner".to_string(), Json::str(sc)));
    }
    if let Some(n) = &cs.name {
        obj.push(("name".to_string(), Json::str(n)));
    }
    let line = Json::Obj(obj).to_string();
    matches!(
        forward_once(addr, &line, timeout, max_frame_len),
        Ok(reply) if reply.get("ok").and_then(Json::as_bool) == Some(true)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_addresses_parse_all_four_spellings() {
        assert_eq!(
            ShardAddr::parse("unix:/tmp/s1.sock").unwrap(),
            ShardAddr::Unix(PathBuf::from("/tmp/s1.sock"))
        );
        assert_eq!(
            ShardAddr::parse("/tmp/s2.sock").unwrap(),
            ShardAddr::Unix(PathBuf::from("/tmp/s2.sock"))
        );
        assert_eq!(
            ShardAddr::parse("tcp:127.0.0.1:7001").unwrap(),
            ShardAddr::Tcp("127.0.0.1:7001".to_string())
        );
        assert_eq!(
            ShardAddr::parse("127.0.0.1:7001").unwrap(),
            ShardAddr::Tcp("127.0.0.1:7001".to_string())
        );
        assert!(ShardAddr::parse("nonsense").is_err());
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let s = ShardState::new(ShardAddr::Tcp("127.0.0.1:1".to_string()));
        let cooldown = Duration::from_millis(30);
        assert!(s.try_admit());
        s.note_failure(3, cooldown);
        s.note_failure(3, cooldown);
        assert!(s.try_admit(), "breaker tripped before the threshold");
        s.note_failure(3, cooldown);
        assert!(!s.try_admit(), "breaker stayed closed at the threshold");
        assert_eq!(s.breaker_name(), "open");
        std::thread::sleep(cooldown + Duration::from_millis(5));
        // Cooldown elapsed: exactly one half-open probe gets through.
        assert!(s.try_admit());
        assert_eq!(s.breaker_name(), "half_open");
        assert!(!s.try_admit(), "second probe admitted while half-open");
        // Probe failure slams it shut again; success closes it.
        s.note_failure(3, cooldown);
        assert_eq!(s.breaker_name(), "open");
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(s.try_admit());
        s.note_success();
        assert_eq!(s.breaker_name(), "closed");
        assert!(s.try_admit());
    }

    fn ring_state(shards: Vec<ShardAddr>) -> RouterState {
        let shard_states: Vec<Arc<ShardState>> = shards
            .iter()
            .cloned()
            .map(|a| Arc::new(ShardState::new(a)))
            .collect();
        let mut ring = Vec::new();
        for (i, s) in shard_states.iter().enumerate() {
            let addr = s.addr.to_string();
            for v in 0..VNODES {
                ring.push((
                    fnv1a(&[addr.as_bytes(), b"#", format!("{}", v).as_bytes()]),
                    i,
                ));
            }
        }
        ring.sort_unstable();
        RouterState {
            cfg: RouterConfig::default(),
            shards: shard_states,
            ring,
            sources: Mutex::new(SourceCache::new(8)),
            metrics: RouterMetrics {
                started: Instant::now(),
                requests: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                rehydrations: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                latency: LatencyHistogram::new(),
            },
            shutdown: AtomicBool::new(false),
            unix_path: None,
            tcp_addr: None,
        }
    }

    #[test]
    fn ring_routing_is_deterministic_and_covers_every_shard() {
        let state = ring_state(vec![
            ShardAddr::Tcp("127.0.0.1:7001".to_string()),
            ShardAddr::Tcp("127.0.0.1:7002".to_string()),
            ShardAddr::Tcp("127.0.0.1:7003".to_string()),
        ]);
        let c1 = state.candidates("00ff00ff00ff00ff");
        let c2 = state.candidates("00ff00ff00ff00ff");
        assert_eq!(c1, c2, "routing must be deterministic");
        assert_eq!(c1.len(), 3, "failover order must cover every shard");
        let mut sorted = c1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        // Different keys spread across owners.
        let owners: std::collections::HashSet<usize> = (0..64u64)
            .map(|i| state.candidates(&format!("{:016x}", i * 0x9e37_79b9))[0])
            .collect();
        assert!(
            owners.len() >= 2,
            "64 keys all routed to one shard: {:?}",
            owners
        );
    }

    #[test]
    fn ring_is_mostly_stable_when_a_shard_joins() {
        let two = ring_state(vec![
            ShardAddr::Tcp("127.0.0.1:7001".to_string()),
            ShardAddr::Tcp("127.0.0.1:7002".to_string()),
        ]);
        let three = ring_state(vec![
            ShardAddr::Tcp("127.0.0.1:7001".to_string()),
            ShardAddr::Tcp("127.0.0.1:7002".to_string()),
            ShardAddr::Tcp("127.0.0.1:7003".to_string()),
        ]);
        let keys: Vec<String> = (0..256)
            .map(|i| format!("{:016x}", i * 0x9e37_79b9_u64))
            .collect();
        let moved = keys
            .iter()
            .filter(|k| {
                let a = two.candidates(k)[0];
                let b = three.candidates(k)[0];
                b != 2 && a != b // moved between the two surviving shards
            })
            .count();
        // Consistent hashing: keys either stay put or move to the NEW
        // shard; almost none shuffle between the old ones.
        assert!(
            moved <= keys.len() / 10,
            "{} of {} keys shuffled between surviving shards",
            moved,
            keys.len()
        );
    }

    #[test]
    fn source_cache_is_lru_bounded_and_updates_names() {
        let mut c = SourceCache::new(2);
        let cs = |k: &str| CachedSource {
            key: k.to_string(),
            source: format!("grammar {}", k),
            scanner: None,
            name: None,
        };
        c.remember(cs("a"));
        c.remember(cs("b"));
        assert!(c.get("a").is_some()); // refreshes a
        c.remember(cs("c")); // evicts b
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        let mut named = cs("a");
        named.name = Some("calc".to_string());
        c.remember(named);
        assert_eq!(c.get("a").unwrap().name.as_deref(), Some("calc"));
    }

    #[test]
    fn rehydration_rewrites_handle_to_cached_source() {
        let parsed =
            Json::parse(r#"{"op":"translate","grammar":"00ff","budget":32,"deadline_ms":100}"#)
                .unwrap();
        let cs = CachedSource {
            key: "00ff".to_string(),
            source: "grammar G ;".to_string(),
            scanner: Some("calc".to_string()),
            name: None,
        };
        let line = rehydrate(&parsed, &cs).unwrap();
        let re = Json::parse(&line).unwrap();
        assert!(re.get("grammar").is_none());
        assert_eq!(re.get("source").and_then(Json::as_str), Some("grammar G ;"));
        assert_eq!(re.get("scanner").and_then(Json::as_str), Some("calc"));
        assert_eq!(re.get("budget").and_then(Json::as_u64), Some(32));
        assert_eq!(re.get("op").and_then(Json::as_str), Some("translate"));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RouterConfig {
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            ..RouterConfig::default()
        };
        assert_eq!(backoff(&cfg, 1), Duration::from_millis(5));
        assert_eq!(backoff(&cfg, 2), Duration::from_millis(10));
        assert_eq!(backoff(&cfg, 3), Duration::from_millis(20));
        assert_eq!(backoff(&cfg, 4), Duration::from_millis(40));
        assert_eq!(backoff(&cfg, 9), Duration::from_millis(40), "cap ignored");
    }
}
