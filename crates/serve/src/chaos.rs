//! Fault injection for the serve topology.
//!
//! Resilience claims are worthless untested, and "pull the plug and
//! see" is not a test. This module makes failures *nameable and
//! repeatable* (the Sasaki/Sassa systematic-debugging discipline,
//! applied to the service layer): a [`ChaosProxy`] sits between the
//! router and a shard as an ordinary TCP hop and misbehaves on
//! command, and a [`ChaosSchedule`] derives a deterministic fault
//! timeline from a seed, so a failing chaos run can be replayed
//! byte-for-byte.
//!
//! The faults model the distinct ways a shard dies from the router's
//! point of view:
//!
//! * [`Fault::Kill`] — connection refused at accept: the process is
//!   gone. (For *cache-loss* semantics, actually restart the
//!   [`Server`](crate::server::Server) — the proxy cannot fake a cold
//!   `GrammarStore`.)
//! * [`Fault::Freeze`] — accepts but never forwards: a stalled or
//!   GC-locked process. Exercises attempt timeouts.
//! * [`Fault::DropConn`] — forwards the request, then closes before
//!   the reply: a crash mid-request. Exercises retry idempotency.
//! * [`Fault::Garble`] — flips bits in replies: a corrupted transport.
//!   Exercises the reply-parse failure path (a garbled reply must be a
//!   retry, never a client-visible parse error).
//! * [`Fault::DelayAccept`] — holds the accept for a while: an
//!   overloaded listener backlog.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::router::ShardAddr;

/// What the proxy does to traffic right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Forward faithfully.
    None,
    /// Refuse every connection (close at accept) and cut live ones.
    Kill,
    /// Accept but forward nothing in either direction.
    Freeze,
    /// Close each connection right after forwarding its first bytes.
    DropConn,
    /// XOR every reply byte with 0x20 so the client-side JSON parse
    /// fails.
    Garble,
    /// Sleep this long before servicing each accepted connection.
    DelayAccept(Duration),
}

/// A controllable TCP proxy in front of one shard.
///
/// Listens on an ephemeral loopback port; point the router's shard
/// address at [`addr`](ChaosProxy::addr) and the real shard keeps
/// running untouched behind it.
pub struct ChaosProxy {
    addr: SocketAddr,
    fault: Arc<Mutex<Fault>>,
    stop: Arc<AtomicBool>,
    /// Bumped on `Kill` so live pump threads cut their connections.
    generation: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start(upstream: ShardAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let fault = Arc::new(Mutex::new(Fault::None));
        let stop = Arc::new(AtomicBool::new(false));
        let generation = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let fault = Arc::clone(&fault);
            let stop = Arc::clone(&stop);
            let generation = Arc::clone(&generation);
            std::thread::Builder::new()
                .name("chaos-accept".to_string())
                .spawn(move || accept_loop(&listener, &upstream, &fault, &stop, &generation))?
        };
        Ok(ChaosProxy {
            addr,
            fault,
            stop,
            generation,
            accept_thread: Some(accept_thread),
        })
    }

    /// Where the router should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's address as a router shard spec.
    pub fn shard_addr(&self) -> ShardAddr {
        ShardAddr::Tcp(self.addr.to_string())
    }

    /// Switch the active fault. `Kill` also severs live connections.
    pub fn set_fault(&self, f: Fault) {
        *self.fault.lock().expect("fault poisoned") = f;
        if f == Fault::Kill {
            self.generation.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The active fault.
    pub fn fault(&self) -> Fault {
        *self.fault.lock().expect("fault poisoned")
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.generation.fetch_add(1, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _unused = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &ShardAddr,
    fault: &Arc<Mutex<Fault>>,
    stop: &Arc<AtomicBool>,
    generation: &Arc<AtomicU64>,
) {
    while !stop.load(Ordering::SeqCst) {
        let (client, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => return,
        };
        let mode = *fault.lock().expect("fault poisoned");
        match mode {
            Fault::Kill => {
                // Close immediately: the router sees a connection that
                // dies before a reply — indistinguishable from a dead
                // process that the kernel still RSTs for.
                let _unused = client.shutdown(Shutdown::Both);
                continue;
            }
            Fault::DelayAccept(d) => std::thread::sleep(d),
            _ => {}
        }
        let up = match connect_upstream(upstream) {
            Ok(s) => s,
            Err(_) => {
                let _unused = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        let fault = Arc::clone(fault);
        let stop = Arc::clone(stop);
        let generation = Arc::clone(generation);
        let born = generation.load(Ordering::SeqCst);
        let _unused = std::thread::Builder::new()
            .name("chaos-pump".to_string())
            .spawn(move || pump_pair(client, up, &fault, &stop, &generation, born));
    }
}

/// The upstream side: plain TCP, or a Unix socket wrapped to look the
/// same.
enum Upstream {
    Tcp(TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl Upstream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Upstream::Tcp(s) => s.set_read_timeout(d),
            Upstream::Unix(s) => s.set_read_timeout(d),
        }
    }
    fn try_clone(&self) -> std::io::Result<Upstream> {
        match self {
            Upstream::Tcp(s) => s.try_clone().map(Upstream::Tcp),
            Upstream::Unix(s) => s.try_clone().map(Upstream::Unix),
        }
    }
    fn shutdown(&self) {
        match self {
            Upstream::Tcp(s) => {
                let _unused = s.shutdown(Shutdown::Both);
            }
            Upstream::Unix(s) => {
                let _unused = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Upstream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Upstream::Tcp(s) => s.read(buf),
            Upstream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Upstream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Upstream::Tcp(s) => s.write(buf),
            Upstream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Upstream::Tcp(s) => s.flush(),
            Upstream::Unix(s) => s.flush(),
        }
    }
}

fn connect_upstream(addr: &ShardAddr) -> std::io::Result<Upstream> {
    match addr {
        ShardAddr::Tcp(a) => TcpStream::connect(a).map(Upstream::Tcp),
        ShardAddr::Unix(p) => std::os::unix::net::UnixStream::connect(p).map(Upstream::Unix),
    }
}

/// Move bytes both ways until a side closes, the proxy stops, a `Kill`
/// bumps the generation, or the fault says otherwise.
fn pump_pair(
    client: TcpStream,
    up: Upstream,
    fault: &Arc<Mutex<Fault>>,
    stop: &Arc<AtomicBool>,
    generation: &Arc<AtomicU64>,
    born: u64,
) {
    let tick = Some(Duration::from_millis(25));
    let _unused = client.set_read_timeout(tick);
    let _unused = up.set_read_timeout(tick);
    let (Ok(client_r), Ok(up_r)) = (client.try_clone(), up.try_clone()) else {
        return;
    };
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // client → upstream (requests, forwarded verbatim).
        {
            let fault = Arc::clone(fault);
            let stop = Arc::clone(stop);
            let generation = Arc::clone(generation);
            let done = Arc::clone(&done);
            let mut from = client_r;
            let mut to = up;
            s.spawn(move || {
                pump_one(
                    &mut from,
                    &mut to,
                    &fault,
                    &stop,
                    &generation,
                    born,
                    &done,
                    false,
                );
                to.shutdown();
                done.store(true, Ordering::SeqCst);
            });
        }
        // upstream → client (replies, garbled under `Garble`).
        {
            let fault = Arc::clone(fault);
            let stop = Arc::clone(stop);
            let generation = Arc::clone(generation);
            let done = Arc::clone(&done);
            let mut from = up_r;
            let mut to = client;
            s.spawn(move || {
                pump_one(
                    &mut from,
                    &mut to,
                    &fault,
                    &stop,
                    &generation,
                    born,
                    &done,
                    true,
                );
                let _unused = to.shutdown(Shutdown::Both);
                done.store(true, Ordering::SeqCst);
            });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn pump_one(
    from: &mut impl Read,
    to: &mut impl Write,
    fault: &Arc<Mutex<Fault>>,
    stop: &Arc<AtomicBool>,
    generation: &Arc<AtomicU64>,
    born: u64,
    done: &Arc<AtomicBool>,
    is_reply_direction: bool,
) {
    let mut buf = [0u8; 4096];
    let mut forwarded_any = false;
    loop {
        if stop.load(Ordering::SeqCst)
            || done.load(Ordering::SeqCst)
            || generation.load(Ordering::SeqCst) != born
        {
            return;
        }
        let mode = *fault.lock().expect("fault poisoned");
        match mode {
            Fault::Kill => return,
            Fault::Freeze => {
                // Forward nothing; leave bytes unread so backpressure
                // builds exactly like a wedged process.
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Fault::DropConn if forwarded_any => return,
            _ => {}
        }
        let n = match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if is_reply_direction && mode == Fault::Garble {
            for b in &mut buf[..n] {
                *b ^= 0x20;
            }
        }
        if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
            return;
        }
        forwarded_any = true;
    }
}

/// splitmix64: tiny, seedable, good enough to scatter fault times.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One scheduled fault: switch `shard` to `fault` at `at`, back to
/// [`Fault::None`] at `until`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Offset from run start.
    pub at: Duration,
    /// When the fault clears.
    pub until: Duration,
    /// Which shard (index into the topology) misbehaves.
    pub shard: usize,
    /// What happens to it.
    pub fault: Fault,
}

/// A deterministic fault timeline derived from a seed: same seed, same
/// run, replayable forever.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    /// Events sorted by `at`.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Derive `count` fault windows over `horizon` across `shards`
    /// shards from `seed`. Windows last 5–20% of the horizon; fault
    /// kinds cycle through the non-trivial modes in seeded order.
    pub fn generate(seed: u64, shards: usize, horizon: Duration, count: usize) -> ChaosSchedule {
        let mut rng = seed;
        let kinds = [
            Fault::Kill,
            Fault::Freeze,
            Fault::DropConn,
            Fault::Garble,
            Fault::DelayAccept(Duration::from_millis(50)),
        ];
        let h_ms = horizon.as_millis().max(1) as u64;
        let mut events: Vec<ChaosEvent> = (0..count)
            .map(|_| {
                let at_ms = splitmix64(&mut rng) % (h_ms * 7 / 10); // start in the first 70%
                let len_ms = h_ms / 20 + splitmix64(&mut rng) % (h_ms * 3 / 20).max(1);
                let shard = (splitmix64(&mut rng) % shards.max(1) as u64) as usize;
                let fault = kinds[(splitmix64(&mut rng) % kinds.len() as u64) as usize];
                ChaosEvent {
                    at: Duration::from_millis(at_ms),
                    until: Duration::from_millis(at_ms + len_ms),
                    shard,
                    fault,
                }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        ChaosSchedule { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial upstream echo server: replies to each line with
    /// `echo:<line>`.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let h = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for conn in listener.incoming().take(8) {
                let Ok(stream) = conn else { continue };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut out = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            break;
                        }
                        if writeln!(out, "echo:{}", line.trim_end()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, h)
    }

    fn roundtrip_via(proxy: &ChaosProxy, msg: &str) -> std::io::Result<String> {
        let mut s = TcpStream::connect(proxy.addr())?;
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        writeln!(s, "{}", msg)?;
        s.flush()?;
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "proxy closed without a reply",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    #[test]
    fn proxy_forwards_faithfully_then_kills_then_recovers() {
        let (addr, _h) = echo_server();
        let proxy = ChaosProxy::start(ShardAddr::Tcp(addr.to_string())).expect("proxy");
        assert_eq!(roundtrip_via(&proxy, "hello").unwrap(), "echo:hello");
        proxy.set_fault(Fault::Kill);
        assert!(
            roundtrip_via(&proxy, "dead?").is_err(),
            "kill let a reply through"
        );
        proxy.set_fault(Fault::None);
        assert_eq!(roundtrip_via(&proxy, "back").unwrap(), "echo:back");
    }

    #[test]
    fn garble_corrupts_replies_but_not_requests() {
        let (addr, _h) = echo_server();
        let proxy = ChaosProxy::start(ShardAddr::Tcp(addr.to_string())).expect("proxy");
        proxy.set_fault(Fault::Garble);
        let reply = roundtrip_via(&proxy, "abc");
        if let Ok(text) = reply {
            assert_ne!(text, "echo:abc", "garble did nothing");
        } // garbled newline is also acceptable corruption
    }

    #[test]
    fn freeze_stalls_the_reply_past_a_deadline() {
        let (addr, _h) = echo_server();
        let proxy = ChaosProxy::start(ShardAddr::Tcp(addr.to_string())).expect("proxy");
        proxy.set_fault(Fault::Freeze);
        let err = roundtrip_via(&proxy, "stuck").unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "freeze produced {:?}, not a read timeout",
            err
        );
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = ChaosSchedule::generate(42, 4, Duration::from_secs(2), 6);
        let b = ChaosSchedule::generate(42, 4, Duration::from_secs(2), 6);
        let c = ChaosSchedule::generate(43, 4, Duration::from_secs(2), 6);
        assert_eq!(a.events, b.events);
        assert_ne!(a.events, c.events, "different seeds collided");
        assert_eq!(a.events.len(), 6);
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at, "events unsorted");
        }
        for e in &a.events {
            assert!(e.shard < 4);
            assert!(e.until > e.at);
        }
    }
}
