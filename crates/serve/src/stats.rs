//! Service-level metrics: what the `Stats` endpoint reports.
//!
//! Three layers are folded into one JSON document:
//!
//! * **request counters** — loads, translates, error replies, plus a
//!   [`LatencyHistogram`](crate::hist::LatencyHistogram) of translate
//!   wall time (p50/p99 as conservative upper bounds);
//! * **evaluation profile** — every profiled evaluation's
//!   [`EvalMetrics`] is [`merge`](EvalMetrics::merge)d into one
//!   aggregate, so the daemon exposes the same pass-level traffic table
//!   the batch CLI prints, accumulated across all requests since start;
//! * **cache and queue** — the session cache's hit/miss/eviction
//!   counters with a per-grammar table, and the pool's live queue
//!   depth and admission-control counters.

use linguist_eval::metrics::EvalMetrics;
use linguist_support::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hist::LatencyHistogram;
use crate::pool::WorkerPool;
use crate::store::GrammarStore;

/// Lifetime request counters plus the latency histogram and the merged
/// evaluation profile.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    /// `load_grammar` requests served (ok or not).
    pub loads: AtomicU64,
    /// Translate jobs finished (batch jobs count individually).
    pub translates: AtomicU64,
    /// Error replies sent, of any kind.
    pub errors: AtomicU64,
    /// Jobs that hit their deadline (subset of `errors`).
    pub deadline_misses: AtomicU64,
    latency: LatencyHistogram,
    eval: Mutex<EvalMetrics>,
}

impl ServiceMetrics {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            loads: AtomicU64::new(0),
            translates: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            eval: Mutex::new(EvalMetrics::default()),
        }
    }

    /// Record one finished translate job: its wall time and, when the
    /// evaluation was profiled, its pass-level traffic.
    pub fn record_translate(&self, wall: Duration, metrics: Option<&EvalMetrics>) {
        self.translates.fetch_add(1, Ordering::Relaxed);
        self.latency.record(wall);
        if let Some(m) = metrics {
            self.eval.lock().expect("metrics poisoned").merge(m);
        }
    }

    /// Count one error reply of the given kind.
    pub fn record_error(&self, kind: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        if kind == "deadline" {
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The merged pass-level profile so far.
    pub fn eval_metrics(&self) -> EvalMetrics {
        self.eval.lock().expect("metrics poisoned").clone()
    }

    /// Render the full `Stats` reply body (everything except `"ok"`).
    pub fn render(&self, store: &GrammarStore, pool: &WorkerPool) -> Vec<(String, Json)> {
        let (p50, p99) = self.latency.p50_p99();
        let p999 = self.latency.quantile(0.999);
        let quantile = |q: Option<Duration>| match q {
            Some(d) => Json::Num(d.as_secs_f64() * 1e3),
            None => Json::Null,
        };
        let s = store.stats();
        let p = pool.stats();
        let eval = self.eval_metrics();
        let grammars: Vec<Json> = store
            .entries()
            .iter()
            .map(|g| {
                Json::Obj(vec![
                    ("grammar".to_string(), Json::str(&g.key)),
                    ("name".to_string(), Json::str(&g.name)),
                    ("passes".to_string(), Json::int(g.passes() as i64)),
                    ("hits".to_string(), Json::int(g.hit_count() as i64)),
                    (
                        "compile_ms".to_string(),
                        Json::Num(g.compile_time.as_secs_f64() * 1e3),
                    ),
                    ("source_lines".to_string(), Json::int(g.source_lines as i64)),
                ])
            })
            .collect();
        vec![
            (
                "uptime_ms".to_string(),
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "requests".to_string(),
                Json::Obj(vec![
                    (
                        "loads".to_string(),
                        Json::int(self.loads.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "translates".to_string(),
                        Json::int(self.translates.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "errors".to_string(),
                        Json::int(self.errors.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "deadline_misses".to_string(),
                        Json::int(self.deadline_misses.load(Ordering::Relaxed) as i64),
                    ),
                    ("latency_p50_ms".to_string(), quantile(p50)),
                    ("latency_p99_ms".to_string(), quantile(p99)),
                    ("latency_p999_ms".to_string(), quantile(p999)),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    ("hits".to_string(), Json::int(s.hits as i64)),
                    ("misses".to_string(), Json::int(s.misses as i64)),
                    ("evictions".to_string(), Json::int(s.evictions as i64)),
                    ("analyses".to_string(), Json::int(s.analyses as i64)),
                    ("entries".to_string(), Json::int(s.entries as i64)),
                    ("capacity".to_string(), Json::int(s.capacity as i64)),
                ]),
            ),
            (
                "optimizer".to_string(),
                Json::Obj(vec![
                    ("folded".to_string(), Json::int(s.opt_folded as i64)),
                    ("eliminated".to_string(), Json::int(s.opt_eliminated as i64)),
                    ("collapsed".to_string(), Json::int(s.opt_collapsed as i64)),
                ]),
            ),
            ("grammars".to_string(), Json::Arr(grammars)),
            (
                "queue".to_string(),
                Json::Obj(vec![
                    ("depth".to_string(), Json::int(p.queued as i64)),
                    ("running".to_string(), Json::int(p.running as i64)),
                    ("capacity".to_string(), Json::int(p.queue_capacity as i64)),
                    ("workers".to_string(), Json::int(p.workers as i64)),
                    ("submitted".to_string(), Json::int(p.submitted as i64)),
                    ("rejected".to_string(), Json::int(p.rejected as i64)),
                    ("panicked".to_string(), Json::int(p.panicked as i64)),
                    ("completed".to_string(), Json::int(p.completed as i64)),
                ]),
            ),
            (
                "eval".to_string(),
                Json::Obj(vec![
                    (
                        "initial_records".to_string(),
                        Json::int(eval.initial_records as i64),
                    ),
                    (
                        "initial_bytes".to_string(),
                        Json::int(eval.initial_bytes as i64),
                    ),
                    (
                        "total_io_bytes".to_string(),
                        Json::int(eval.total_io_bytes() as i64),
                    ),
                    (
                        "total_attrs".to_string(),
                        Json::int(eval.total_attrs_evaluated() as i64),
                    ),
                    (
                        "total_funcs".to_string(),
                        Json::int(eval.total_funcs_invoked() as i64),
                    ),
                    (
                        "lock_acquisitions".to_string(),
                        Json::int(eval.lock_acquisitions as i64),
                    ),
                    (
                        "passes".to_string(),
                        Json::Arr(
                            eval.passes
                                .iter()
                                .map(|row| {
                                    Json::Obj(vec![
                                        ("pass".to_string(), Json::int(row.pass as i64)),
                                        (
                                            "records_read".to_string(),
                                            Json::int(row.records_read as i64),
                                        ),
                                        (
                                            "bytes_read".to_string(),
                                            Json::int(row.bytes_read as i64),
                                        ),
                                        (
                                            "records_written".to_string(),
                                            Json::int(row.records_written as i64),
                                        ),
                                        (
                                            "bytes_written".to_string(),
                                            Json::int(row.bytes_written as i64),
                                        ),
                                        (
                                            "attrs".to_string(),
                                            Json::int(row.attrs_evaluated as i64),
                                        ),
                                        ("funcs".to_string(), Json::int(row.funcs_invoked as i64)),
                                        (
                                            "rules".to_string(),
                                            Json::int(row.rules_evaluated as i64),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ]
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linguist_eval::aptfile::ReadDir;
    use linguist_eval::metrics::PassIo;

    fn one_pass_metrics(n: u64) -> EvalMetrics {
        EvalMetrics {
            initial_records: n,
            initial_bytes: 10 * n,
            lock_acquisitions: 0,
            passes: vec![PassIo {
                pass: 1,
                direction: ReadDir::Backward,
                input_boundary: 0,
                output_boundary: 1,
                records_read: n,
                bytes_read: 10 * n,
                records_written: n,
                bytes_written: 10 * n,
                attrs_evaluated: 2 * n,
                funcs_invoked: n,
                rules_evaluated: n,
            }],
        }
    }

    #[test]
    fn profiles_merge_across_requests() {
        let m = ServiceMetrics::new();
        m.record_translate(Duration::from_millis(2), Some(&one_pass_metrics(5)));
        m.record_translate(Duration::from_millis(4), Some(&one_pass_metrics(3)));
        m.record_translate(Duration::from_millis(1), None);
        let agg = m.eval_metrics();
        assert_eq!(agg.initial_records, 8);
        assert_eq!(agg.passes.len(), 1);
        assert_eq!(agg.passes[0].records_read, 8);
        assert_eq!(m.translates.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn render_produces_valid_json_with_all_sections() {
        let m = ServiceMetrics::new();
        m.record_translate(Duration::from_millis(2), Some(&one_pass_metrics(5)));
        m.record_error("deadline");
        m.record_error("overloaded");
        let store = GrammarStore::new(4);
        let pool = WorkerPool::new(1, 2);
        let body = Json::Obj(m.render(&store, &pool)).to_string();
        let parsed = Json::parse(&body).expect("stats body is valid JSON");
        let requests = parsed.get("requests").expect("requests section");
        assert_eq!(requests.get("errors").and_then(Json::as_i64), Some(2));
        assert_eq!(
            requests.get("deadline_misses").and_then(Json::as_i64),
            Some(1)
        );
        assert!(requests
            .get("latency_p50_ms")
            .and_then(Json::as_f64)
            .is_some());
        assert!(requests
            .get("latency_p999_ms")
            .and_then(Json::as_f64)
            .is_some());
        assert_eq!(
            parsed
                .get("queue")
                .and_then(|q| q.get("capacity"))
                .and_then(Json::as_i64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("eval")
                .and_then(|e| e.get("total_attrs"))
                .and_then(Json::as_i64),
            Some(10)
        );
        pool.shutdown();
    }
}
