//! Connection-level hardening: oversized request lines and stalled
//! (slow-loris) connections must fail typed and must not pin daemon
//! resources.
//!
//! These tests speak raw sockets on purpose — the malformed traffic
//! they send is exactly what [`linguist_serve::client::Client`]
//! refuses to produce.

use linguist_serve::server::{Server, ServerConfig, ServerHandle};
use linguist_support::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

const PING: &str = r#"{"op":"ping"}"#;

fn sock_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "linguist-frame-{}-{}-{}.sock",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(tag: &str, max_frame_len: usize, idle: Option<Duration>) -> ServerHandle {
    Server::start(ServerConfig {
        unix_path: Some(sock_path(tag)),
        workers: 2,
        queue_capacity: 8,
        max_frame_len,
        idle_timeout: idle,
        ..ServerConfig::default()
    })
    .expect("daemon starts")
}

fn raw(handle: &ServerHandle) -> UnixStream {
    UnixStream::connect(handle.unix_path().expect("unix bound")).expect("connect")
}

fn error_kind(reply: &Json) -> Option<&str> {
    reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

#[test]
fn oversized_request_line_gets_frame_too_large_and_the_connection_closes() {
    let handle = start("big", 1024, None);
    let mut conn = raw(&handle);
    // 8 KiB of 'x' with no newline — four times the frame bound.
    let blob = vec![b'x'; 8 * 1024];
    conn.write_all(&blob).expect("write");
    conn.flush().expect("flush");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("typed reply arrives");
    let reply = Json::parse(line.trim_end()).expect("reply is JSON");
    assert_eq!(
        error_kind(&reply),
        Some("frame_too_large"),
        "got: {}",
        reply
    );
    // The daemon hangs up after the typed reply — clean EOF, or a
    // reset (it closed with our unsent garbage still in its receive
    // buffer, so the kernel answers RST). Never more protocol data.
    let mut rest = Vec::new();
    match reader.read_to_end(&mut rest) {
        Ok(n) => assert_eq!(
            n, 0,
            "daemon kept the connection open after frame_too_large"
        ),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{}", e),
    }
    // And it still serves well-behaved clients.
    let mut good = raw(&handle);
    writeln!(good, "{}", PING).expect("write");
    let mut line = String::new();
    BufReader::new(good).read_line(&mut line).expect("reply");
    let reply = Json::parse(line.trim_end()).expect("reply is JSON");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn a_stalled_half_written_request_frees_its_slot() {
    let handle = start("stall", 4 * 1024 * 1024, Some(Duration::from_millis(150)));
    // Write half a request, then stall past the idle deadline.
    let mut stalled = raw(&handle);
    stalled
        .write_all(br#"{"op":"trans"#)
        .expect("half a request");
    stalled.flush().expect("flush");
    let mut reader = BufReader::new(stalled.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("typed reply arrives");
    let reply = Json::parse(line.trim_end()).expect("reply is JSON");
    assert_eq!(error_kind(&reply), Some("idle_timeout"), "got: {}", reply);
    let mut rest = Vec::new();
    assert_eq!(
        reader.read_to_end(&mut rest).expect("read to end"),
        0,
        "daemon kept the stalled connection open"
    );
    // The slot is free: a new connection is accepted and served.
    let mut good = raw(&handle);
    writeln!(good, "{}", PING).expect("write");
    let mut line = String::new();
    BufReader::new(good).read_line(&mut line).expect("reply");
    let reply = Json::parse(line.trim_end()).expect("reply is JSON");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn an_idle_connection_between_requests_is_closed_silently() {
    let handle = start("idle", 4 * 1024 * 1024, Some(Duration::from_millis(150)));
    let mut conn = raw(&handle);
    // A complete request first, so the idle period is *between* frames.
    writeln!(conn, "{}", PING).expect("write");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    assert!(line.contains("\"ok\":true"), "ping failed: {}", line);
    // Now say nothing. The daemon closes without inventing an error
    // reply (a quiet keep-alive connection is not a protocol fault).
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("read to end");
    assert_eq!(n, 0, "expected silent close, got: {:?}", rest);
    handle.shutdown();
}
