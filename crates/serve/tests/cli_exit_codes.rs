//! CLI behavior pinned at the process boundary: exit codes for failed
//! batches, and the `serve`/`client` subcommands end to end.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn linguist() -> Command {
    Command::new(env!("CARGO_BIN_EXE_linguist"))
}

fn write_tmp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("linguist-cli-{}-{}", std::process::id(), name));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

/// Analyzes cleanly, but the start symbol has no finite derivation, so
/// the profiled evaluation (synthetic tree) fails for it.
const BOTTOMLESS: &str = "\
grammar Loop ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
end
";

const GOOD: &str = "\
grammar Tiny ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
prod s0 = x :
  s0.V = x.OBJ ;
end
end
";

#[test]
fn batch_profile_json_where_every_job_fails_exits_nonzero() {
    let a = write_tmp("allfail-a.lg", BOTTOMLESS);
    let b = write_tmp("allfail-b.lg", BOTTOMLESS);
    let out = linguist()
        .args(["--batch", "--profile=json"])
        .arg(&a)
        .arg(&b)
        .output()
        .expect("run linguist");
    // Every job's profile carries an eval_error; the sweep produced
    // nothing usable and must not exit 0.
    assert!(
        !out.status.success(),
        "fully failed batch exited 0; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("eval_error"),
        "reports should still be printed: {}",
        stdout
    );
}

#[test]
fn batch_profile_json_with_one_surviving_job_exits_zero() {
    let good = write_tmp("mixed-good.lg", GOOD);
    let bad = write_tmp("mixed-bad.lg", BOTTOMLESS);
    let out = linguist()
        .args(["--batch", "--profile=json"])
        .arg(&good)
        .arg(&bad)
        .output()
        .expect("run linguist");
    assert!(
        out.status.success(),
        "partially failed batch should exit 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn batch_with_a_driver_error_still_exits_nonzero() {
    let good = write_tmp("drv-good.lg", GOOD);
    let broken = write_tmp("drv-broken.lg", "grammar Broken");
    let out = linguist()
        .arg("--batch")
        .arg(&good)
        .arg(&broken)
        .output()
        .expect("run linguist");
    assert!(!out.status.success());
}

/// Checks clean apart from one AG001 warning: `t.DEAD` is computed
/// from real data but never consumed.
const WARNY: &str = "\
grammar Warny ;
terminals  x : intrinsic OBJ int ;
nonterminals
  s : syn V int ;
  t : syn V int, syn DEAD int ;
start s ;
productions
prod s = t :
  s.V = t.V + 0 ;
end
prod t = x :
  t.V = x.OBJ ;
  t.DEAD = x.OBJ + 1 ;
end
end
";

/// `s.V` is declared but never defined: an AG007 error.
const INCOMPLETE: &str = "\
grammar Gap ;
terminals  x ;
nonterminals  s : syn V int ;
start s ;
productions
prod s = x :
end
end
";

#[test]
fn check_clean_grammar_exits_zero_in_both_formats() {
    let good = write_tmp("check-good.lg", GOOD);
    let out = linguist().arg("check").arg(&good).output().expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{}", stdout);
    let out = linguist()
        .arg("check")
        .arg("--format=json")
        .arg(&good)
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"grammar\":"), "{}", stdout);
    assert!(stdout.contains("\"errors\":0"), "{}", stdout);
}

#[test]
fn check_deny_warnings_flips_the_exit_code() {
    // The paper-faithful pipeline (--opt=off) reports the unused
    // attribute as an AG001 warning, and --deny-warnings makes that
    // warning fatal.
    let warny = write_tmp("check-warny.lg", WARNY);
    let out = linguist()
        .args(["check", "--opt=off"])
        .arg(&warny)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "warnings alone should not fail a plain check: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[AG001]"));
    let out = linguist()
        .args(["check", "--opt=off", "--deny-warnings"])
        .arg(&warny)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1), "--deny-warnings must exit 1");
    // Under the default optimizer the dead attribute is *eliminated*
    // rather than warned about: AG014 is a note, and notes never flip
    // the exit code.
    let out = linguist()
        .args(["check", "--deny-warnings"])
        .arg(&warny)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "the optimizer eliminates the dead attribute, so --deny-warnings \
         has nothing to deny: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("note[AG014]"));
}

#[test]
fn check_errors_exit_one_and_bad_usage_exits_two() {
    let bad = write_tmp("check-gap.lg", INCOMPLETE);
    let out = linguist().arg("check").arg(&bad).output().expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[AG007]"));
    let out = linguist()
        .args(["check", "--format", "yaml"])
        .arg(&bad)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}

#[test]
fn serve_and_client_subcommands_round_trip() {
    let sock = std::env::temp_dir().join(format!("linguist-cli-serve-{}.sock", std::process::id()));
    let _unused = std::fs::remove_file(&sock);
    let mut daemon = linguist()
        .args(["serve", "--socket"])
        .arg(&sock)
        .args(["--workers", "2", "--queue", "8"])
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    // Wait for the socket to appear.
    let started = Instant::now();
    while !sock.exists() {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "daemon never bound its socket"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let grammar = write_tmp("serve-good.lg", GOOD);
    let load = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .arg("load")
        .arg(&grammar)
        .output()
        .expect("client load");
    assert!(
        load.status.success(),
        "load failed: {}",
        String::from_utf8_lossy(&load.stdout)
    );
    let stdout = String::from_utf8_lossy(&load.stdout);
    let handle = stdout
        .split("\"grammar\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("load reply carries the handle")
        .to_string();
    let translate = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .args(["translate", &handle, "--budget", "32"])
        .output()
        .expect("client translate");
    assert!(
        translate.status.success(),
        "translate failed: {}",
        String::from_utf8_lossy(&translate.stdout)
    );
    assert!(String::from_utf8_lossy(&translate.stdout).contains("\"outputs\""));
    let stats = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .arg("stats")
        .output()
        .expect("client stats");
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("\"cache\""));
    let shutdown = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .arg("shutdown")
        .output()
        .expect("client shutdown");
    assert!(shutdown.status.success());
    let code = daemon.wait().expect("daemon exits after shutdown request");
    assert!(code.success(), "daemon exit: {:?}", code);
}

#[test]
fn client_failure_modes_get_distinct_exit_codes() {
    // Exit 3: connection refused (nothing listens on the socket).
    let ghost =
        std::env::temp_dir().join(format!("linguist-cli-ghost-{}.sock", std::process::id()));
    let _unused = std::fs::remove_file(&ghost);
    let out = linguist()
        .args(["client", "--socket"])
        .arg(&ghost)
        .arg("ping")
        .output()
        .expect("client runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "refused connection must exit 3; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let diag = String::from_utf8_lossy(&out.stderr);
    assert!(
        diag.contains("connect"),
        "stderr should diagnose the connection failure: {}",
        diag
    );

    // Exit 2: usage error (no command at all).
    let out = linguist()
        .args(["client", "--socket"])
        .arg(&ghost)
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");

    // Against a live daemon: exit 1 for a typed server error, exit 4
    // for a timed-out reply.
    let sock = std::env::temp_dir().join(format!("linguist-cli-codes-{}.sock", std::process::id()));
    let _unused = std::fs::remove_file(&sock);
    let mut daemon = linguist()
        .args(["serve", "--socket"])
        .arg(&sock)
        .args(["--workers", "1", "--queue", "4"])
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let started = Instant::now();
    while !sock.exists() {
        assert!(started.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .args(["translate", "no-such-handle", "--budget", "8"])
        .output()
        .expect("client runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "typed server error must exit 1; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("grammar_not_found"));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("grammar_not_found"),
        "stderr should name the error kind"
    );

    // A 1 ms client-side timeout cannot cover a compile: the reply is
    // late, the client reports a timeout and exits 4.
    let grammar = write_tmp("codes-slow.lg", GOOD);
    let out = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .args(["--timeout-ms", "1", "load"])
        .arg(&grammar)
        .output()
        .expect("client runs");
    assert_eq!(
        out.status.code(),
        Some(4),
        "timed-out reply must exit 4; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no reply within"),
        "stderr should diagnose the timeout: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    daemon.kill().expect("kill daemon");
    let _unused = daemon.wait();
}

#[test]
fn client_retries_ride_out_a_daemon_that_starts_late() {
    // The daemon comes up ~300 ms after the client starts retrying:
    // with --retries the client must connect on a later attempt and
    // exit 0.
    let sock = std::env::temp_dir().join(format!("linguist-cli-late-{}.sock", std::process::id()));
    let _unused = std::fs::remove_file(&sock);
    let starter = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            linguist()
                .args(["serve", "--socket"])
                .arg(&sock)
                .args(["--workers", "1"])
                .stderr(Stdio::null())
                .spawn()
                .expect("daemon starts")
        })
    };
    let out = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .args(["--retries", "8", "ping"])
        .output()
        .expect("client runs");
    let mut daemon = starter.join().expect("starter thread");
    assert!(
        out.status.success(),
        "retrying client should reach the late daemon; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    daemon.kill().expect("kill daemon");
    let _unused = daemon.wait();
}

#[test]
fn sigterm_drains_the_daemon_and_it_exits_zero() {
    let sock = std::env::temp_dir().join(format!("linguist-cli-term-{}.sock", std::process::id()));
    let _unused = std::fs::remove_file(&sock);
    let mut daemon = linguist()
        .args(["serve", "--socket"])
        .arg(&sock)
        .args(["--workers", "2"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let started = Instant::now();
    while !sock.exists() {
        assert!(started.elapsed() < Duration::from_secs(10));
        std::thread::sleep(Duration::from_millis(20));
    }
    // Prove it serves, then send SIGTERM (no client shutdown request).
    let out = linguist()
        .args(["client", "--socket"])
        .arg(&sock)
        .arg("ping")
        .output()
        .expect("client runs");
    assert!(out.status.success());
    let pid = daemon.id() as i32;
    let rc = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(rc.success());
    let deadline = Instant::now() + Duration::from_secs(10);
    let code = loop {
        if let Some(code) = daemon.try_wait().expect("poll daemon") {
            break code;
        }
        assert!(Instant::now() < deadline, "daemon never exited on SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(code.success(), "drained daemon must exit 0, got {:?}", code);
}

/// `linguist codegen` is the offline face of the compiled-evaluator
/// engine: it must emit exactly the source the AOT registry was built
/// from. Pinning the `meta` grammar byte-for-byte against the checked-in
/// workspace member catches any drift between the CLI path and
/// `rustgen` (the standalone layout differs only in file name:
/// `src/main.rs` vs the AOT crate's `src/lib.rs`).
#[test]
fn codegen_subcommand_emits_the_pinned_meta_evaluator() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let grammar = manifest.join("../grammars/lg/meta.lg");
    // Default (--opt=on) output must match the checked-in optimized AOT
    // variant; the --opt=off ablation must match the paper-faithful one.
    let cases = [
        (vec!["codegen"], "../engine/generated/meta_opt/src/lib.rs"),
        (
            vec!["codegen", "--opt=off"],
            "../engine/generated/meta/src/lib.rs",
        ),
    ];
    for (i, (args, pinned_rel)) in cases.iter().enumerate() {
        let pinned = manifest.join(pinned_rel);
        let out_dir =
            std::env::temp_dir().join(format!("linguist-cli-codegen-{}-{}", std::process::id(), i));
        let _unused = std::fs::remove_dir_all(&out_dir);
        let out = linguist()
            .args(args)
            .arg(&grammar)
            .arg("--out")
            .arg(&out_dir)
            .output()
            .expect("run linguist codegen");
        assert!(
            out.status.success(),
            "codegen failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let emitted = std::fs::read_to_string(out_dir.join("src/main.rs")).expect("emitted source");
        let expected = std::fs::read_to_string(&pinned).expect("checked-in AOT source");
        assert_eq!(
            emitted, expected,
            "CLI codegen output drifted from the checked-in meta evaluator \
             (rerun `cargo run --example gen_aot` if rustgen changed)"
        );
        // The standalone manifest must detach from the enclosing workspace
        // so the emitted crate builds with a plain `cargo build`.
        let manifest_out = std::fs::read_to_string(out_dir.join("Cargo.toml")).expect("manifest");
        assert!(manifest_out.contains("[workspace]"), "{}", manifest_out);
        // With the optimizer on, the change-impact closures ride along
        // as a sidecar; the ablation must not emit one.
        let impact = out_dir.join("impact.json");
        if args.contains(&"--opt=off") {
            assert!(!impact.exists(), "--opt=off must not write impact.json");
        } else {
            let text = std::fs::read_to_string(&impact).expect("impact.json sidecar");
            assert!(text.contains("\"production\""), "{}", text);
        }
        let _unused = std::fs::remove_dir_all(&out_dir);
    }
}

#[test]
fn codegen_subcommand_rejects_unanalyzable_grammars_nonzero() {
    let bad = write_tmp(
        "codegen-bad.lg",
        "grammar Broken ;\nthis is not a grammar\n",
    );
    let out = linguist().arg("codegen").arg(&bad).output().expect("run");
    assert!(!out.status.success(), "broken grammar must not exit 0");
    assert!(
        !out.stderr.is_empty(),
        "failure must be explained on stderr"
    );
}
