//! The sharded tier's acceptance tests: a router in front of real
//! in-process shards, under open-loop load, with shards dying and
//! recovering mid-run.
//!
//! Pinned properties:
//!
//! * requests route by grammar content hash and spread across shards;
//! * killing a shard mid-run loses **zero** client requests — the
//!   router fails over, and the dead shard is ejected within a health
//!   interval;
//! * a restarted shard is re-admitted with the hot grammars replicated
//!   back in *before* it takes traffic, so by-handle requests do not
//!   miss;
//! * with every shard down, clients get a typed `shard_unavailable`
//!   error (not a hang, not a transport error), and service resumes
//!   when a shard returns;
//! * a draining router refuses new work with `shutting_down`;
//! * chaos-proxy faults (freeze, garbled replies) trip failover
//!   instead of corrupting results.

use linguist_serve::chaos::{ChaosProxy, Fault};
use linguist_serve::client::Client;
use linguist_serve::load::{grammar_variant, run_load, LoadConfig};
use linguist_serve::router::{Router, RouterConfig, RouterHandle, ShardAddr};
use linguist_serve::server::{Server, ServerConfig, ServerHandle};
use linguist_support::json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "linguist-router-{}-{}-{}.sock",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start_shard(path: &Path) -> ServerHandle {
    Server::start(ServerConfig {
        unix_path: Some(path.to_path_buf()),
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("shard starts")
}

/// A router over the given shard sockets, tuned for test speed: fast
/// health checks, short attempt timeouts, quick breaker cooldown.
fn start_router(shards: Vec<ShardAddr>) -> RouterHandle {
    Router::start(RouterConfig {
        unix_path: Some(sock_path("front")),
        shards,
        health_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        attempt_timeout: Duration::from_millis(500),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        breaker_cooldown: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("router starts")
}

fn router_client(router: &RouterHandle) -> Client {
    Client::connect_unix(router.unix_path().expect("unix bound")).expect("connect")
}

fn ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_kind(reply: &Json) -> Option<&str> {
    reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

/// Wait (bounded) for the router's health checker to agree with
/// `want_healthy` about the shard at `index`.
fn await_health(router: &RouterHandle, index: usize, want_healthy: bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if router.state().shards()[index].is_healthy() == want_healthy {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "shard {} never became healthy={} (stats: healthy={})",
        index,
        want_healthy,
        router.state().shards()[index].is_healthy()
    );
}

#[test]
fn requests_spread_across_shards_and_route_deterministically() {
    let (p1, p2) = (sock_path("spread1"), sock_path("spread2"));
    let (s1, s2) = (start_shard(&p1), start_shard(&p2));
    let router = start_router(vec![ShardAddr::Unix(p1), ShardAddr::Unix(p2)]);
    let mut client = router_client(&router);
    // Enough distinct grammars that both shards own some keys with
    // overwhelming probability (p ≈ 2^-19 that 20 keys miss a shard
    // whose ring share is near half).
    let mut handles = Vec::new();
    for i in 0..20 {
        let reply = client
            .load_grammar(&grammar_variant(i), None, None)
            .expect("load");
        assert!(ok(&reply), "load {} refused: {}", i, reply);
        handles.push(
            reply
                .get("grammar")
                .and_then(Json::as_str)
                .expect("handle")
                .to_string(),
        );
    }
    for h in &handles {
        let reply = client.translate_budget(h, 32, None).expect("translate");
        assert!(ok(&reply), "translate via router failed: {}", reply);
    }
    let counts: Vec<u64> = router
        .state()
        .shards()
        .iter()
        .map(|s| s.request_count())
        .collect();
    assert!(
        counts.iter().all(|&c| c > 0),
        "one shard took no traffic at all: {:?}",
        counts
    );
    drop(client);
    router.shutdown();
    s1.shutdown();
    s2.shutdown();
}

#[test]
fn killing_a_shard_mid_run_loses_no_requests_and_recovery_replicates() {
    let (p1, p2) = (sock_path("kill1"), sock_path("kill2"));
    let s1 = start_shard(&p1);
    let s2 = start_shard(&p2);
    let router = start_router(vec![ShardAddr::Unix(p1.clone()), ShardAddr::Unix(p2)]);
    let target = ShardAddr::Unix(router.unix_path().expect("unix bound").to_path_buf());

    // Kill shard 1 ~300 ms into a ~1.2 s run; restart it at ~700 ms.
    let chaos = std::thread::spawn({
        let p1 = p1.clone();
        move || {
            std::thread::sleep(Duration::from_millis(300));
            s1.shutdown();
            std::thread::sleep(Duration::from_millis(400));
            start_shard(&p1)
        }
    });
    let report = run_load(&LoadConfig {
        target,
        rate: 120.0,
        duration: Duration::from_millis(1200),
        grammars: 6,
        budget: 32,
        senders: 4,
        ..LoadConfig::default()
    })
    .expect("load runs");
    let s1b = chaos.join().expect("chaos thread");

    assert_eq!(
        report.failed, 0,
        "client-visible failures despite failover: {:?}",
        report.failures_by_kind
    );
    assert!(report.sent >= 100, "load undershot: {} sent", report.sent);

    let dead = &router.state().shards()[0];
    assert!(dead.ejection_count() >= 1, "killed shard was never ejected");
    // Re-admission happens on the health loop; give it a moment.
    await_health(&router, 0, true);
    assert!(
        dead.readmission_count() >= 1,
        "restarted shard was never re-admitted"
    );
    assert!(
        dead.replicated_count() >= 1,
        "no hot grammars were replicated into the recovered shard"
    );

    // The recovered shard answers by-handle requests for grammars it
    // never saw loaded (replication put them there; rehydration would
    // also cover a miss).
    let mut direct =
        Client::connect_unix(s1b.unix_path().expect("unix bound")).expect("connect recovered");
    let handle_reply = direct
        .load_grammar(&grammar_variant(0), None, None)
        .expect("load");
    assert!(ok(&handle_reply));
    assert_eq!(
        handle_reply.get("cached").and_then(Json::as_bool),
        Some(true),
        "replication should have warmed variant 0 into the recovered shard"
    );
    drop(direct);
    router.shutdown();
    s1b.shutdown();
    s2.shutdown();
}

#[test]
fn all_shards_down_is_a_typed_error_and_service_resumes() {
    let p1 = sock_path("alldown");
    let s1 = start_shard(&p1);
    let router = start_router(vec![ShardAddr::Unix(p1.clone())]);
    let mut client = router_client(&router);
    let reply = client
        .load_grammar(&grammar_variant(0), None, None)
        .expect("load");
    assert!(ok(&reply));
    let handle = reply
        .get("grammar")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();

    s1.shutdown();
    await_health(&router, 0, false);
    let reply = client
        .translate_budget(&handle, 16, None)
        .expect("roundtrip still works");
    assert_eq!(
        error_kind(&reply),
        Some("shard_unavailable"),
        "expected typed unavailability, got: {}",
        reply
    );

    // Shard returns; the router re-admits it (replicating the cached
    // grammar) and traffic flows again.
    let s1b = start_shard(&p1);
    await_health(&router, 0, true);
    let reply = client
        .translate_budget(&handle, 16, None)
        .expect("roundtrip");
    assert!(ok(&reply), "service did not resume: {}", reply);
    drop(client);
    router.shutdown();
    s1b.shutdown();
}

#[test]
fn draining_router_refuses_new_work_with_shutting_down() {
    let p1 = sock_path("drain");
    let s1 = start_shard(&p1);
    let router = start_router(vec![ShardAddr::Unix(p1)]);
    let mut client = router_client(&router);
    // Establish the session (a connection still in the accept backlog
    // when the drain starts is refused, which is also correct).
    assert!(ok(&client.ping().expect("roundtrip")));
    router.state().begin_drain();
    let reply = client.ping().expect("roundtrip");
    assert_eq!(error_kind(&reply), Some("shutting_down"), "got: {}", reply);
    drop(client);
    router.shutdown();
    s1.shutdown();
}

#[test]
fn frozen_and_garbled_shards_fail_over_without_corrupting_replies() {
    // Shard 1 sits behind a chaos proxy; shard 2 is direct. All keys
    // have both as candidates, so any fault on the proxy must surface
    // as failover, never as a corrupt or failed client reply.
    let (p1, p2) = (sock_path("chaos1"), sock_path("chaos2"));
    let s1 = start_shard(&p1);
    let s2 = start_shard(&p2);
    let proxy = ChaosProxy::start(ShardAddr::Unix(p1)).expect("proxy starts");
    let router = start_router(vec![proxy.shard_addr(), ShardAddr::Unix(p2)]);
    let mut client = router_client(&router);

    let mut handles = Vec::new();
    for i in 0..4 {
        let reply = client
            .load_grammar(&grammar_variant(i), None, None)
            .expect("load");
        assert!(ok(&reply), "load refused: {}", reply);
        handles.push(
            reply
                .get("grammar")
                .and_then(Json::as_str)
                .expect("handle")
                .to_string(),
        );
    }

    for fault in [Fault::Garble, Fault::Freeze] {
        proxy.set_fault(fault);
        for h in &handles {
            let reply = client.translate_budget(h, 16, None).expect("roundtrip");
            assert!(
                ok(&reply),
                "fault {:?} leaked to the client: {}",
                proxy.fault(),
                reply
            );
        }
        proxy.set_fault(Fault::None);
        await_health(&router, 0, true);
    }
    drop(client);
    router.shutdown();
    s1.shutdown();
    s2.shutdown();
}
