//! The session cache vs. the scratch-dir sweeper: two resident daemons
//! in one process, compiling concurrently with single-flight and a
//! bounded LRU, while `TempAptDir::sweep_stale` runs on its own
//! schedule.
//!
//! The property that must hold: housekeeping never disturbs live work.
//! A sweep may only reap directories of *dead* processes; the scratch
//! directories of in-flight evaluations in this process survive any
//! number of concurrent sweeps, single-flight still collapses
//! concurrent compiles of one key to one analysis per store, and the
//! LRU bound holds under full interleaving.

use linguist_ag::analysis::Config;
use linguist_eval::aptfile::TempAptDir;
use linguist_serve::load::grammar_variant;
use linguist_serve::store::GrammarStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

#[test]
fn sweeping_never_reaps_this_processes_live_scratch_dirs() {
    let dirs: Vec<TempAptDir> = (0..4).map(|_| TempAptDir::new().expect("mkdir")).collect();
    for d in &dirs {
        std::fs::write(d.boundary(0), b"in-flight intermediate").expect("write");
    }
    // Zero max-age: everything *sweepable* is stale. Live directories
    // of this process must survive anyway (pid guard + lock file).
    let _ = TempAptDir::sweep_stale(Duration::ZERO).expect("sweep");
    for d in &dirs {
        assert!(
            d.path().exists(),
            "sweep reaped a live evaluation's scratch dir: {}",
            d.path().display()
        );
        assert!(d.boundary(0).exists(), "sweep removed an in-flight file");
    }
}

#[test]
fn two_daemons_single_flight_their_own_compiles_under_sweep_pressure() {
    // Two resident daemons (say, two shards colocated on one box),
    // each with its own session cache, compiling the same grammar set
    // while a housekeeping thread sweeps continuously.
    let store_a = GrammarStore::new(16);
    let store_b = GrammarStore::new(16);
    let config = Config::default();
    const VARIANTS: usize = 4;
    const THREADS_PER_STORE: usize = 4;
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let sweeper = s.spawn(|| {
            let mut sweeps = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let _ = TempAptDir::sweep_stale(Duration::ZERO).expect("sweep");
                sweeps += 1;
            }
            sweeps
        });
        let mut workers = Vec::new();
        for store in [&store_a, &store_b] {
            for t in 0..THREADS_PER_STORE {
                workers.push(s.spawn(move || {
                    // Each thread holds open scratch state mid-load, the
                    // way an in-flight evaluation would.
                    let scratch = TempAptDir::new().expect("mkdir");
                    std::fs::write(scratch.boundary(0), b"x").expect("write");
                    for round in 0..3 {
                        for i in 0..VARIANTS {
                            // Offset start points so threads collide on
                            // different keys mid-compile.
                            let v = (i + t + round) % VARIANTS;
                            let (g, _cached) = store
                                .load(&grammar_variant(v), None, None, &config)
                                .expect("load compiles");
                            assert!(g.passes() >= 1);
                        }
                    }
                    assert!(
                        scratch.path().exists(),
                        "sweeper reaped scratch mid-evaluation"
                    );
                }));
            }
        }
        for w in workers {
            w.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
        let sweeps = sweeper.join().expect("sweeper");
        assert!(sweeps >= 1, "sweeper never ran");
    });
    // Single-flight: each daemon analyzed each distinct grammar exactly
    // once, no matter how many threads raced the load.
    for (name, store) in [("a", &store_a), ("b", &store_b)] {
        let stats = store.stats();
        assert_eq!(
            stats.analyses, VARIANTS as u64,
            "store {} reanalyzed under contention: {:?}",
            name, stats
        );
        assert_eq!(stats.entries, VARIANTS, "store {}: {:?}", name, stats);
    }
}

#[test]
fn lru_eviction_stays_bounded_and_recompiles_evicted_keys() {
    let store = GrammarStore::new(2);
    let config = Config::default();
    std::thread::scope(|s| {
        for t in 0..4 {
            let store = &store;
            let config = &config;
            s.spawn(move || {
                for round in 0..4 {
                    for i in 0..6 {
                        let v = (i + t) % 6;
                        let (g, _cached) = store
                            .load(&grammar_variant(v), None, None, config)
                            .expect("load");
                        assert!(g.passes() >= 1, "round {} variant {}", round, v);
                    }
                }
            });
        }
    });
    let stats = store.stats();
    assert!(
        stats.entries <= 2,
        "LRU bound violated under concurrency: {:?}",
        stats
    );
    assert!(
        stats.evictions >= 4,
        "six hot keys through a two-slot cache must evict: {:?}",
        stats
    );
    // Evicted keys were recompiled — more analyses than distinct keys —
    // but every load still succeeded (no torn entries under the race).
    assert!(
        stats.analyses > 6,
        "expected recompiles after eviction: {:?}",
        stats
    );
}
