//! The compiled-evaluator engine seen through the serve protocol.
//!
//! Pinned here:
//!
//! * a daemon configured for the AOT engine answers `translate` with
//!   the same outputs as the interpreter, reports `"engine": "aot"`
//!   in the reply, and counts the run in the stats `engine` block;
//! * a grammar outside the AOT registry degrades to the interpreter
//!   *per job*, succeeding with a typed `engine_fallback` reason
//!   (`aot_miss`) rather than an error;
//! * the default (interpreted) daemon reports `"engine":
//!   "interpreted"` and carries no fallback field;
//! * with `rustc` on PATH, a JIT daemon compiles on first use and
//!   serves byte-compatible outputs tagged `"engine": "jit"`.

use linguist_engine::{EngineConfig, EngineKind};
use linguist_serve::client::Client;
use linguist_serve::server::{Server, ServerConfig, ServerHandle};
use linguist_support::json::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn sock_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "linguist-engine-serve-{}-{}-{}.sock",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(tag: &str, kind: EngineKind) -> ServerHandle {
    Server::start(ServerConfig {
        unix_path: Some(sock_path(tag)),
        workers: 2,
        queue_capacity: 16,
        engine: EngineConfig {
            kind,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("daemon starts")
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect_unix(handle.unix_path().expect("unix socket bound")).expect("connect")
}

fn ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

fn engine_of(reply: &Json) -> Option<&str> {
    reply.get("engine").and_then(Json::as_str)
}

fn fallback_kind(reply: &Json) -> Option<&str> {
    reply
        .get("engine_fallback")
        .and_then(|f| f.get("kind"))
        .and_then(Json::as_str)
}

fn stats_engine(stats: &Json) -> &Json {
    stats.get("engine").expect("stats carry an engine block")
}

fn counter(stats: &Json, key: &str) -> i64 {
    stats_engine(stats)
        .get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("engine block missing {}: {}", key, stats))
}

/// A tiny grammar deliberately absent from the AOT registry.
const UNBUNDLED: &str = "\
grammar Tiny ;
terminals  x : intrinsic OBJ int ;
nonterminals  s : syn V int ;
start s ;
productions
prod s0 = s1 x :
  s0.V = s1.V + x.OBJ ;
end
prod s0 = x :
  s0.V = x.OBJ ;
end
end
";

#[test]
fn aot_daemon_serves_compiled_translations_and_counts_them() {
    let handle = start("aot", EngineKind::CompiledAot);
    let mut c = client(&handle);
    let loaded = c
        .load_grammar(linguist_grammars::calc_source(), Some("calc"), Some("calc"))
        .expect("load round-trips");
    assert!(ok(&loaded), "load failed: {}", loaded);
    let key = loaded.get("grammar").and_then(Json::as_str).unwrap();
    let reply = c
        .translate_input(key, "6 * 7", None)
        .expect("translate round-trips");
    assert!(ok(&reply), "translate failed: {}", reply);
    // Same answer as the interpreter, tagged with the engine that ran.
    assert_eq!(
        reply
            .get("outputs")
            .and_then(|o| o.get("V"))
            .and_then(Json::as_str),
        Some("42")
    );
    assert_eq!(engine_of(&reply), Some("aot"), "{}", reply);
    assert_eq!(fallback_kind(&reply), None, "{}", reply);
    let stats = c.stats().expect("stats round-trip");
    assert_eq!(
        stats_engine(&stats).get("kind").and_then(Json::as_str),
        Some("aot")
    );
    assert!(counter(&stats, "aot_runs") >= 1, "{}", stats);
    assert_eq!(counter(&stats, "fallbacks"), 0, "{}", stats);
    handle.shutdown();
}

#[test]
fn aot_miss_degrades_to_interpreter_with_typed_reason() {
    let handle = start("aot-miss", EngineKind::CompiledAot);
    let mut c = client(&handle);
    let loaded = c
        .load_grammar(UNBUNDLED, None, Some("tiny"))
        .expect("load round-trips");
    assert!(ok(&loaded), "load failed: {}", loaded);
    let key = loaded.get("grammar").and_then(Json::as_str).unwrap();
    let reply = c
        .translate_budget(key, 64, None)
        .expect("translate round-trips");
    // Degraded, not dead: the job still succeeds on the interpreter
    // and says why the compiled path was unavailable.
    assert!(ok(&reply), "fallback translate failed: {}", reply);
    assert_eq!(engine_of(&reply), Some("interpreted"), "{}", reply);
    assert_eq!(fallback_kind(&reply), Some("aot_miss"), "{}", reply);
    let stats = c.stats().expect("stats round-trip");
    assert!(counter(&stats, "fallbacks") >= 1, "{}", stats);
    assert!(counter(&stats, "interpreted_runs") >= 1, "{}", stats);
    handle.shutdown();
}

#[test]
fn interpreted_daemon_reports_its_engine_without_fallback_noise() {
    let handle = start("interp", EngineKind::Interpreted);
    let mut c = client(&handle);
    let loaded = c
        .load_grammar(linguist_grammars::calc_source(), Some("calc"), Some("calc"))
        .expect("load round-trips");
    assert!(ok(&loaded), "load failed: {}", loaded);
    let key = loaded.get("grammar").and_then(Json::as_str).unwrap();
    let reply = c
        .translate_input(key, "2 + 3", None)
        .expect("translate round-trips");
    assert!(ok(&reply), "translate failed: {}", reply);
    assert_eq!(engine_of(&reply), Some("interpreted"), "{}", reply);
    assert!(
        reply.get("engine_fallback").is_none(),
        "interpreted runs are not fallbacks: {}",
        reply
    );
    let stats = c.stats().expect("stats round-trip");
    assert_eq!(
        stats_engine(&stats).get("kind").and_then(Json::as_str),
        Some("interpreted")
    );
    handle.shutdown();
}

#[test]
fn jit_daemon_compiles_and_serves_when_rustc_is_present() {
    if !linguist_engine::jit::rustc_available() {
        eprintln!("SKIP jit_daemon_compiles_and_serves_when_rustc_is_present: rustc not on PATH");
        return;
    }
    let handle = start("jit", EngineKind::CompiledJit);
    let mut c = client(&handle);
    let loaded = c
        .load_grammar(linguist_grammars::calc_source(), Some("calc"), Some("calc"))
        .expect("load round-trips");
    assert!(ok(&loaded), "load failed: {}", loaded);
    let key = loaded.get("grammar").and_then(Json::as_str).unwrap();
    let reply = c
        .translate_input(key, "(1 + 2) * 3", None)
        .expect("translate round-trips");
    assert!(ok(&reply), "translate failed: {}", reply);
    assert_eq!(
        reply
            .get("outputs")
            .and_then(|o| o.get("V"))
            .and_then(Json::as_str),
        Some("9")
    );
    assert_eq!(engine_of(&reply), Some("jit"), "{}", reply);
    let stats = c.stats().expect("stats round-trip");
    assert!(counter(&stats, "jit_runs") >= 1, "{}", stats);
    handle.shutdown();
}
