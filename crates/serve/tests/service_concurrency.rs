//! End-to-end concurrency tests for the resident translation service:
//! many clients against one daemon, over both transports.
//!
//! The acceptance properties pinned here:
//!
//! * a warm-cache `translate` performs **zero** grammar re-analysis
//!   (the store's `analyses` counter stays at one per distinct
//!   grammar, however many clients load and translate it);
//! * no cross-request attribute leakage: every client gets the outputs
//!   of *its own* inputs back, under full interleaving;
//! * a panicking job produces a typed `panicked` reply **to its own
//!   client only**, and the daemon keeps serving;
//! * a full queue rejects with a typed `overloaded` reply while the
//!   in-flight work still completes;
//! * deadlines include queue wait: a job stuck behind a slow one fails
//!   with `deadline` without evaluating.

use linguist_serve::client::Client;
use linguist_serve::server::{Server, ServerConfig, ServerHandle};
use linguist_support::json::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn sock_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "linguist-serve-{}-{}-{}.sock",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(tag: &str, workers: usize, queue: usize) -> ServerHandle {
    Server::start(ServerConfig {
        unix_path: Some(sock_path(tag)),
        tcp_addr: Some("127.0.0.1:0".to_string()),
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    })
    .expect("daemon starts")
}

fn unix_client(handle: &ServerHandle) -> Client {
    Client::connect_unix(handle.unix_path().expect("unix socket bound")).expect("connect")
}

fn ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_kind(reply: &Json) -> Option<&str> {
    reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

fn calc_source() -> &'static str {
    linguist_grammars::calc_source()
}

#[test]
fn interleaved_clients_get_their_own_outputs_with_one_analysis() {
    let handle = start("interleave", 4, 64);
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 5;
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let handle = &handle;
            s.spawn(move || {
                // Half the clients arrive over TCP, half over the Unix
                // socket; all load the same grammar text.
                let mut client = if c % 2 == 0 {
                    unix_client(handle)
                } else {
                    Client::connect_tcp(handle.tcp_addr().expect("tcp bound")).expect("connect")
                };
                let loaded = client
                    .load_grammar(calc_source(), Some("calc"), Some("calc"))
                    .expect("load round-trips");
                assert!(ok(&loaded), "load failed: {}", loaded);
                let key = loaded
                    .get("grammar")
                    .and_then(Json::as_str)
                    .expect("load reply carries the handle")
                    .to_string();
                for r in 0..ROUNDS {
                    // Distinct arithmetic per client and round, so a
                    // cross-request mixup produces a wrong number, not
                    // a coincidental match.
                    let (a, b) = (10 * c + 1, r + 2);
                    let reply = client
                        .translate_input(&key, &format!("{} + {}", a, b), None)
                        .expect("translate round-trips");
                    assert!(ok(&reply), "translate failed: {}", reply);
                    let v = reply
                        .get("outputs")
                        .and_then(|o| o.get("V"))
                        .and_then(Json::as_str)
                        .expect("calc yields V");
                    assert_eq!(
                        v,
                        (a + b).to_string(),
                        "client {} round {} got someone else's answer",
                        c,
                        r
                    );
                }
            });
        }
    });
    // The acceptance pin: every warm translate ran with zero grammar
    // re-analysis. CLIENTS loads + CLIENTS*ROUNDS translates resolved
    // against ONE frontend run.
    let store = handle.state().store_stats();
    assert_eq!(store.analyses, 1, "warm path re-analyzed: {:?}", store);
    assert_eq!(store.misses, 1);
    assert_eq!(
        store.hits,
        (CLIENTS + CLIENTS * ROUNDS - 1) as u64,
        "every request after the first should hit: {:?}",
        store
    );
    // Cross-check through the public Stats endpoint.
    let mut client = unix_client(&handle);
    let stats = client.stats().expect("stats round-trips");
    assert!(ok(&stats));
    assert_eq!(
        stats
            .get("cache")
            .and_then(|c| c.get("analyses"))
            .and_then(Json::as_i64),
        Some(1)
    );
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("translates"))
            .and_then(Json::as_i64),
        Some((CLIENTS * ROUNDS) as i64)
    );
    assert!(stats
        .get("requests")
        .and_then(|r| r.get("latency_p99_ms"))
        .and_then(Json::as_f64)
        .is_some());
    handle.shutdown();
}

#[test]
fn a_panicking_job_fails_only_its_own_client() {
    let handle = start("panic", 2, 16);
    let source = calc_source();
    std::thread::scope(|s| {
        // Client A: injected panic.
        s.spawn(|| {
            let mut client = unix_client(&handle);
            let reply = client
                .roundtrip(&Json::Obj(vec![
                    ("op".to_string(), Json::str("translate")),
                    ("source".to_string(), Json::str(source)),
                    ("budget".to_string(), Json::int(32)),
                    ("fault".to_string(), Json::str("panic")),
                ]))
                .expect("panicking job still replies");
            assert_eq!(error_kind(&reply), Some("panicked"), "{}", reply);
        });
        // Client B: ordinary work, before and after A's panic lands.
        s.spawn(|| {
            let mut client = unix_client(&handle);
            for _ in 0..4 {
                let reply = client
                    .roundtrip(&Json::Obj(vec![
                        ("op".to_string(), Json::str("translate")),
                        ("source".to_string(), Json::str(source)),
                        ("budget".to_string(), Json::int(32)),
                    ]))
                    .expect("round-trips");
                assert!(ok(&reply), "bystander caught the panic: {}", reply);
            }
        });
    });
    // The daemon survived and keeps serving.
    let mut client = unix_client(&handle);
    let stats = client.stats().expect("daemon still answers");
    assert_eq!(
        stats
            .get("queue")
            .and_then(|q| q.get("panicked"))
            .and_then(Json::as_i64),
        Some(1)
    );
    handle.shutdown();
}

#[test]
fn full_queue_rejects_typed_while_inflight_completes() {
    // One worker, one queue slot: a burst of slow jobs must produce
    // both completions and typed `overloaded` rejections.
    let handle = start("overload", 1, 1);
    const BURST: usize = 8;
    let outcomes: Vec<Json> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..BURST)
            .map(|_| {
                s.spawn(|| {
                    let mut client = unix_client(&handle);
                    client
                        .roundtrip(&Json::Obj(vec![
                            ("op".to_string(), Json::str("translate")),
                            ("source".to_string(), Json::str(calc_source())),
                            ("budget".to_string(), Json::int(16)),
                            ("fault".to_string(), Json::str("stall")),
                        ]))
                        .expect("every request gets a reply")
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect()
    });
    let completed = outcomes.iter().filter(|r| ok(r)).count();
    let rejected = outcomes
        .iter()
        .filter(|r| error_kind(r) == Some("overloaded"))
        .count();
    assert_eq!(completed + rejected, BURST, "unexpected reply kinds");
    assert!(completed >= 1, "in-flight work should complete");
    assert!(rejected >= 1, "admission control never engaged");
    // Rejections are visible in the stats, and the daemon is healthy.
    let mut client = unix_client(&handle);
    let stats = client.stats().expect("stats after overload");
    let shown = stats
        .get("queue")
        .and_then(|q| q.get("rejected"))
        .and_then(Json::as_i64)
        .expect("rejected counter");
    assert_eq!(shown, rejected as i64);
    handle.shutdown();
}

#[test]
fn deadlines_cover_queue_wait() {
    let handle = start("deadline", 1, 2);
    std::thread::scope(|s| {
        // Occupy the sole worker with a stalled job...
        s.spawn(|| {
            let mut client = unix_client(&handle);
            let reply = client
                .roundtrip(&Json::Obj(vec![
                    ("op".to_string(), Json::str("translate")),
                    ("source".to_string(), Json::str(calc_source())),
                    ("budget".to_string(), Json::int(16)),
                    ("fault".to_string(), Json::str("stall")),
                ]))
                .expect("stalled job replies");
            assert!(ok(&reply), "{}", reply);
        });
        // ...then queue a job whose whole deadline elapses in the queue.
        s.spawn(|| {
            // Give the stalled job time to be dequeued.
            std::thread::sleep(Duration::from_millis(60));
            let mut client = unix_client(&handle);
            let reply = client
                .roundtrip(&Json::Obj(vec![
                    ("op".to_string(), Json::str("translate")),
                    ("source".to_string(), Json::str(calc_source())),
                    ("budget".to_string(), Json::int(16)),
                    ("deadline_ms".to_string(), Json::int(5)),
                ]))
                .expect("deadlined job replies");
            assert_eq!(error_kind(&reply), Some("deadline"), "{}", reply);
        });
    });
    handle.shutdown();
}

#[test]
fn batch_requests_fan_out_and_report_per_job() {
    let handle = start("batch", 2, 16);
    let mut client = unix_client(&handle);
    let loaded = client
        .load_grammar(calc_source(), Some("calc"), None)
        .expect("load");
    let key = loaded
        .get("grammar")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let reply = client
        .roundtrip(&Json::Obj(vec![
            ("op".to_string(), Json::str("translate_batch")),
            ("grammar".to_string(), Json::str(&key)),
            (
                "jobs".to_string(),
                Json::Arr(vec![
                    Json::str("1 + 2"),
                    Json::str("2 * 3"),
                    Json::int(24), // a synthetic-budget job in the same batch
                    Json::str("(4 - 1) * 5"),
                ]),
            ),
        ]))
        .expect("batch round-trips");
    assert!(ok(&reply), "{}", reply);
    assert_eq!(reply.get("jobs").and_then(Json::as_i64), Some(4));
    assert_eq!(reply.get("failed").and_then(Json::as_i64), Some(0));
    let results = reply
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    let v = |i: usize| {
        results[i]
            .get("outputs")
            .and_then(|o| o.get("V"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(v(0).as_deref(), Some("3"));
    assert_eq!(v(1).as_deref(), Some("6"));
    assert!(ok(&results[2]));
    assert_eq!(v(3).as_deref(), Some("15"));
    handle.shutdown();
}

#[test]
fn malformed_lines_and_unknown_handles_get_typed_errors() {
    let handle = start("badreq", 1, 4);
    let mut client = unix_client(&handle);
    let reply = client
        .roundtrip(&Json::Obj(vec![("op".to_string(), Json::str("nope"))]))
        .expect("replies");
    assert_eq!(error_kind(&reply), Some("bad_request"));
    let reply = client
        .translate_budget("0000000000000000", 16, None)
        .expect("replies");
    assert_eq!(error_kind(&reply), Some("grammar_not_found"));
    // The connection survives error replies.
    assert!(ok(&client.stats().expect("still serving")));
    handle.shutdown();
}

#[test]
fn check_reuses_the_compiled_cache_and_locates_broken_grammars() {
    let handle = start("check", 2, 16);
    let mut client = unix_client(&handle);
    let loaded = client
        .load_grammar(calc_source(), Some("calc"), None)
        .expect("load");
    assert!(ok(&loaded), "{}", loaded);
    let key = loaded
        .get("grammar")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    // Check by handle: coded findings straight off the cached analysis.
    let reply = client.check(&key).expect("check round-trips");
    assert!(ok(&reply), "{}", reply);
    assert_eq!(reply.get("errors").and_then(Json::as_i64), Some(0));
    assert!(reply.get("passes").and_then(Json::as_i64).is_some());
    assert!(reply.get("diagnostics").and_then(Json::as_arr).is_some());
    // Check by (identical) source: resolves through the cache, same shape.
    let by_source = client
        .check_source(calc_source(), Some("calc"))
        .expect("check by source round-trips");
    assert!(ok(&by_source), "{}", by_source);
    assert_eq!(
        by_source.get("errors").and_then(Json::as_i64),
        reply.get("errors").and_then(Json::as_i64)
    );
    // Neither check re-ran the frontend: one analysis for the one load.
    let store = handle.state().store_stats();
    assert_eq!(store.analyses, 1, "check re-analyzed: {:?}", store);
    // A grammar the cache refuses to compile still yields located
    // findings (an `ok` reply, not an opaque compile error).
    let broken =
        "grammar B ;\nnonterminals s : syn V int ;\nstart s ;\nproductions\nprod s = :\nend\nend\n";
    let reply = client
        .check_source(broken, None)
        .expect("broken check round-trips");
    assert!(ok(&reply), "{}", reply);
    assert!(reply.get("errors").and_then(Json::as_i64).unwrap_or(0) >= 1);
    let diags = reply.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert!(
        diags.iter().any(|d| {
            d.get("code").and_then(Json::as_str) == Some("AG007")
                && d.get("line").and_then(Json::as_i64).unwrap_or(0) >= 5
        }),
        "expected a located AG007 finding: {}",
        reply
    );
    // Unknown handles still get the typed error.
    let reply = client.check("0000000000000000").expect("replies");
    assert_eq!(error_kind(&reply), Some("grammar_not_found"));
    handle.shutdown();
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let handle = start("shutdown", 1, 4);
    let path = handle.unix_path().expect("unix bound").to_path_buf();
    let mut client = unix_client(&handle);
    assert!(ok(&client.shutdown().expect("shutdown acked")));
    // wait() returns because the acceptors observed the request.
    handle.wait();
    assert!(!path.exists(), "socket file should be cleaned up");
}
