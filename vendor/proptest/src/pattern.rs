//! Generator for the regex-subset string strategies (`"[a-z][a-z0-9]{0,6}"`).
//!
//! Supports the constructs the workspace's patterns use: literals,
//! escapes (`\t`, `\n`, `\r`, `\\`, `\.` …), character classes with
//! ranges, groups, top-level and grouped `|` alternation, and the
//! repeat operators `*`, `+`, `?`, `{n}`, `{m,n}`. Unbounded repeats
//! are capped at 8.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// One alternative chosen uniformly.
    Alt(Vec<Node>),
    /// All parts in sequence.
    Seq(Vec<Node>),
    /// A literal character.
    Char(char),
    /// One character drawn from the listed inclusive ranges.
    Class(Vec<(char, char)>),
    /// The inner node repeated between `min` and `max` times.
    Repeat(Box<Node>, u32, u32),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alt(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unsupported regex pattern {:?} (stopped at offset {})",
        pattern,
        pos
    );
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(arms) => {
            let i = rng.below(arms.len() as u64) as usize;
            emit(&arms[i], rng, out);
        }
        Node::Seq(parts) => {
            for p in parts {
                emit(p, rng, out);
            }
        }
        Node::Char(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                    return;
                }
                pick -= span;
            }
            unreachable!()
        }
        Node::Repeat(inner, min, max) => {
            let n = *min + rng.below((*max - *min + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
    let mut arms = vec![parse_seq(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        arms.push(parse_seq(chars, pos));
    }
    if arms.len() == 1 {
        arms.pop().unwrap()
    } else {
        Node::Alt(arms)
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Node {
    let mut parts = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        parts.push(parse_repeat(chars, pos));
    }
    if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        Node::Seq(parts)
    }
}

fn parse_repeat(chars: &[char], pos: &mut usize) -> Node {
    let atom = parse_atom(chars, pos);
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
        }
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '{' => {
            *pos += 1;
            let min = parse_number(chars, pos);
            let max = if chars[*pos] == ',' {
                *pos += 1;
                parse_number(chars, pos)
            } else {
                min
            };
            assert!(chars[*pos] == '}', "malformed {{m,n}} repeat");
            *pos += 1;
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => atom,
    }
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alt(chars, pos);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unclosed group in pattern"
            );
            *pos += 1;
            inner
        }
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while *pos < chars.len() && chars[*pos] != ']' {
                let lo = parse_class_char(chars, pos);
                if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    *pos += 1;
                    let hi = parse_class_char(chars, pos);
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            assert!(
                *pos < chars.len() && chars[*pos] == ']',
                "unclosed character class in pattern"
            );
            *pos += 1;
            Node::Class(ranges)
        }
        '\\' => {
            *pos += 1;
            let c = escape(chars[*pos]);
            *pos += 1;
            Node::Char(c)
        }
        '.' => {
            *pos += 1;
            // Any printable ASCII character.
            Node::Class(vec![(' ', '~')])
        }
        c => {
            *pos += 1;
            Node::Char(c)
        }
    }
}

fn parse_class_char(chars: &[char], pos: &mut usize) -> char {
    if chars[*pos] == '\\' {
        *pos += 1;
        let c = escape(chars[*pos]);
        *pos += 1;
        c
    } else {
        let c = chars[*pos];
        *pos += 1;
        c
    }
}

fn escape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .expect("number expected in {m,n} repeat")
}
