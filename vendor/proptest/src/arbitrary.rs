//! `any::<T>()` and the `Arbitrary` trait for common scalar types.

use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: unit interval scaled into a wide range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}
