//! Deterministic PRNG and run configuration.

/// Per-test configuration. Only the case count is meaningful in the shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases (the only knob the workspace uses).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Runtime override of every property's case count: `PROPTEST_CASES=N`.
/// Lets CI run a bounded smoke over the same properties a local run
/// takes deep, without touching per-test configuration. Unparsable or
/// absent values mean "no override".
pub fn cases_override() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// FNV-1a over the test's qualified name: a stable per-test seed, so
/// failures reproduce run to run without any persisted state.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 — tiny, full-period, and plenty for test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_override_reads_the_environment() {
        // Serialized by the test name: no other test touches this var.
        unsafe { std::env::set_var("PROPTEST_CASES", "17") };
        assert_eq!(cases_override(), Some(17));
        unsafe { std::env::set_var("PROPTEST_CASES", "not-a-number") };
        assert_eq!(cases_override(), None);
        unsafe { std::env::remove_var("PROPTEST_CASES") };
        assert_eq!(cases_override(), None);
    }
}
