//! Offline shim of the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses so
//! property tests build and run with no network access: strategies are
//! plain deterministic value generators (seeded per test from the test's
//! module path), `proptest!` expands to an ordinary `#[test]` running the
//! configured number of cases, and `prop_assert*` are panic-based. There
//! is no shrinking — a failing case panics with the generated values in
//! the assertion message, and the deterministic seed reproduces it.

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    /// `prop::collection::vec(...)` etc. resolve through this alias.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One uniformly chosen strategy from a list (no weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Panic-based stand-in for proptest's failure-propagating assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panic-based stand-in for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panic-based stand-in for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-defining macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates `config.cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:tt in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases =
                $crate::test_runner::cases_override().unwrap_or(__config.cases);
            let __seed =
                $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0u64..(__cases as u64) {
                let __case_seed = __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                // Run each case under catch_unwind so a failure can name
                // the case index and per-case seed before propagating:
                // with no shrinking, that report *is* the reproducer.
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut __rng = $crate::test_runner::TestRng::new(__case_seed);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(__payload) = __outcome {
                    eprintln!(
                        "proptest shim: property `{}` failed at case {}/{} \
                         (case seed {:#018x}, base seed {:#018x})",
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                        __cases,
                        __case_seed,
                        __seed,
                    );
                    eprintln!(
                        "proptest shim: seeds derive from the test's module path, so \
                         rerunning this test reproduces the failure deterministically \
                         (set PROPTEST_CASES={} to stop at the failing case)",
                        __case + 1,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}
