//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A `Vec` of values drawn from `element`, with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span.max(1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
