//! The `Strategy` trait and combinators.
//!
//! A shim strategy is simply a deterministic value generator: `generate`
//! draws one value from the seeded [`TestRng`]. The combinator surface
//! (`prop_map`, `prop_recursive`, `boxed`, unions, tuples, ranges,
//! regex-pattern strings) matches what the workspace's property tests
//! use of proptest 1.x.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Bounded recursive strategies: unrolls `depth` levels of `recurse`
    /// around `self` as the leaf. The `desired_size` / `expected_branch`
    /// hints of real proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backing type).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- numeric ranges as strategies -----------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---- regex-pattern string strategies --------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

// ---- tuples of strategies --------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
