//! Offline shim of the `criterion` benchmarking harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use. Each benchmark runs `sample_size` samples (one
//! timed batch per sample, batch size chosen so a sample takes a
//! measurable slice of `measurement_time`) and reports the median
//! per-iteration time. No plotting, no statistics beyond the median —
//! enough to eyeball regressions offline.

use std::time::{Duration, Instant};

/// Top-level harness state and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget spread across the samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// A single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named set of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &id.label,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Benchmark a plain closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(
            name,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// End the group (upstream finalizes reports here; the shim prints as it goes).
    pub fn finish(self) {}
}

/// A benchmark's display identifier: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("forward", 100)` displays as `forward/100`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times and record the total wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibrate: grow the batch until one batch takes ~budget/samples.
    let target = budget.div_duration_f64(Duration::from_secs(1)) / samples as f64;
    let mut iters = 1u64;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed.as_secs_f64() >= target.min(0.05) || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let _ = per_iter;
    println!(
        "  {name:<28} median {:>12} ({} samples x {} iters)",
        format_time(median),
        samples,
        iters
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declare a benchmark group, with or without a custom configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
