//! Offline shim of the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`
//! — over a SplitMix64 core. Not cryptographic; for synthetic-workload
//! generation only.

use std::ops::Range;

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A random value of `T` over its canonical domain.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard generator (here: SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types `Rng::gen` can produce.
pub trait Random {
    /// Draw one value.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! int_random {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_random!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        self.start + f64::random(rng) * (self.end - self.start)
    }
}
