#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer's machine will run, fully offline.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. release build of the whole workspace
#   2. tier-1 test suite (root package integration tests)
#   3. full workspace test suite (every crate + vendored shims)
#   4. clippy, warnings denied
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo clippy --workspace -q -- -D warnings =="
cargo clippy --workspace -q -- -D warnings

echo "verify: all green"
