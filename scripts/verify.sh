#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer's machine will run, fully offline.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. formatting check
#   2. release build of the whole workspace
#   3. tier-1 test suite (root package integration tests)
#   4. full workspace test suite (every crate + vendored shims)
#   5. clippy, warnings denied
#   6. --profile=json smoke test: the CLI's JSON output must parse
#   7. crash-resume smoke test: a checkpointed run can be resumed and
#      reports the boundary it restarted after
#   8. checkpoint-overhead bench snapshot lands in target/
#   9. serve smoke test: daemon on a temp Unix socket answers a load,
#      a check (against the compiled cache, no re-analysis), a
#      translate, and a stats round-trip, then shuts down cleanly
#  10. lint gate: `linguist check --deny-warnings` accepts the meta
#      grammar, and the JSON report parses and is deterministic
#  11. fuzz smoke: a bounded run of the five-way differential oracle
#      (generated grammars + corpus replay, incl. the compiled corpus
#      leg) under PROPTEST_CASES=12
#  12. batch-throughput bench snapshot lands in target/ and records a
#      lock-free owned store (plus the legacy ablation's lock count)
#  13. scaling gates: the ignored-by-default batch scaling tier — the
#      >=2.5x @ 4 workers regression test (self-skips below 4 cores)
#      and the bounded 2-worker smoke (parallel dispatch must not be
#      slower than sequential beyond scheduler noise)
#  14. sharded serve chaos smoke: a router over two shard daemons,
#      one shard SIGKILLed mid `linguist load` run and restarted —
#      the client sees 100% success (router failover absorbs the
#      kill), and the router's stats show ejection, re-admission,
#      and hot-grammar replication into the recovered shard
#  15. serve-resilience bench snapshot lands in target/, its 2+ shard
#      kill legs show full success, and the committed copy parses
#  16. compiled-engine AOT end to end: `--engine aot` profile reports
#      the aot engine, and an `--engine aot` daemon answers a
#      translate tagged "engine":"aot" with engine counters in stats
#  17. compiled differential smoke: the ignored-by-default fifth-leg
#      fuzz property under PROPTEST_CASES=8 (loudly skipped, inside
#      the test, when rustc is absent)
#  18. compiled-vs-interpreted bench snapshot lands in target/ and
#      parses; the committed copy records the >=5x AOT speedup over
#      the disk-backed interpreter
#  19. optimizer identity gate: meta and pascal translated by an
#      `--opt=on` daemon and an `--opt=off` daemon over the same
#      synthesized derivation produce byte-identical outputs, and the
#      optimized daemon's stats report nonzero fold/eliminate counters
#  20. opt-effect bench snapshot lands in target/ and parses; both the
#      fresh run and the committed copy show records-written reduced on
#      >=3 bundled grammars with pass counts never increasing, and no
#      grammar pays a >2% wall-time regression
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo clippy --workspace -q -- -D warnings =="
cargo clippy --workspace -q -- -D warnings

echo "== linguist --profile=json smoke test =="
target/release/linguist crates/grammars/lg/calc.lg --profile=json | python3 -m json.tool > /dev/null
echo "profile JSON parses"

echo "== crash-resume smoke test =="
CKPT="$(mktemp -d)"
trap 'rm -rf "$CKPT"' EXIT
target/release/linguist crates/grammars/lg/block.lg --profile=json \
  --checkpoint-dir "$CKPT" --retries 2 > /dev/null
test -f "$CKPT/MANIFEST" || { echo "no manifest written"; exit 1; }
target/release/linguist crates/grammars/lg/block.lg --profile=json \
  --checkpoint-dir "$CKPT" --resume \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)["recovery"]
assert r["resumed_from"] is not None, "resume did not use the checkpoint"
'
echo "checkpoint + resume round-trips"

echo "== checkpoint-overhead bench snapshot =="
cargo bench -q -p linguist-bench --bench table_checkpoint_overhead > /dev/null
test -f target/BENCH_checkpoint_overhead.json || { echo "no bench snapshot"; exit 1; }
python3 -m json.tool < target/BENCH_checkpoint_overhead.json > /dev/null
echo "bench snapshot parses"

echo "== serve smoke test =="
SOCK="$(mktemp -u /tmp/linguist-verify-XXXXXX.sock)"
target/release/linguist serve --socket "$SOCK" --workers 2 --queue 8 &
SERVE_PID=$!
trap 'rm -rf "$CKPT"; kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never bound its socket"; exit 1; }
HANDLE="$(target/release/linguist client --socket "$SOCK" \
    load crates/grammars/lg/meta.lg --scanner meta --name meta \
  | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"]; print(r["grammar"])')"
target/release/linguist client --socket "$SOCK" \
    raw "{\"op\":\"check\",\"grammar\":\"$HANDLE\"}" \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["errors"] == 0 and r["warnings"] == 0, r
assert r["passes"] == 4, r
'
target/release/linguist client --socket "$SOCK" \
    translate "$HANDLE" --budget 200 \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["passes"] == 4, "meta grammar should evaluate in 4 passes"
'
target/release/linguist client --socket "$SOCK" stats \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["cache"]["analyses"] == 1, "one grammar, one analysis"
assert r["requests"]["translates"] == 1, r["requests"]
'
target/release/linguist client --socket "$SOCK" shutdown > /dev/null
wait "$SERVE_PID" || { echo "daemon exited non-zero"; exit 1; }
[ ! -e "$SOCK" ] || { echo "socket file not cleaned up"; exit 1; }
echo "serve round-trips and shuts down cleanly"

echo "== linguist check lint gate =="
target/release/linguist check --deny-warnings crates/grammars/lg/meta.lg > /dev/null
target/release/linguist check --format=json crates/grammars/lg/meta.lg \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["errors"] == 0 and r["warnings"] == 0, (r["errors"], r["warnings"])
assert r["passes"] == 4, r["passes"]
codes = {d["code"] for d in r["diagnostics"]}
assert {"AG004", "AG005"} <= codes, codes
'
A="$(target/release/linguist check --format=json crates/grammars/lg/meta.lg)"
B="$(target/release/linguist check --format=json crates/grammars/lg/meta.lg)"
[ "$A" = "$B" ] || { echo "check JSON is not deterministic"; exit 1; }
echo "meta grammar lints clean; JSON parses and is deterministic"

echo "== differential fuzz smoke =="
# Bounded smoke over the same property the full suite takes to 64 cases:
# generated grammars through sequential / parallel / crash-resume / serve,
# plus a replay of every pinned fixture in tests/corpus/. Deterministic —
# the shim derives case seeds from the test's module path.
PROPTEST_CASES=12 cargo test -q --release --test differential
echo "differential oracle agrees across all five modes"

echo "== batch-throughput bench snapshot =="
cargo bench -q -p linguist-bench --bench table_batch_throughput > /dev/null
test -f target/BENCH_table_batch_throughput.json || { echo "no bench snapshot"; exit 1; }
python3 -c '
import json
r = json.load(open("target/BENCH_table_batch_throughput.json"))
assert r["backing"] == "memory_owned", r["backing"]
assert r["lock_acquisitions"] == 0, "owned store took store locks"
assert r["shared_store_lock_acquisitions"] > 0, "legacy ablation row missing"
assert len(r["sweep"]) == 4, r["sweep"]
'
echo "bench snapshot parses; owned store took zero store locks"

echo "== batch scaling gates =="
# The ignored-by-default scaling tier, serialized: two concurrent
# throughput measurements would skew each other. The 4-worker >=2.5x
# assertion self-skips below 4 cores (its zero-lock invariant still
# runs); the 2-worker smoke is a bounded gate on every machine.
cargo test -q --release --test batch -- --ignored --test-threads=1
echo "scaling regression + 2-worker smoke pass"

echo "== sharded serve chaos smoke =="
# Two shard daemons behind one router. A seeded chaos schedule hard-
# kills (SIGKILL) one shard ~0.4 s into an open-loop load run and
# restarts it ~0.4 s later. The load generator runs with zero client
# retries, so any request the *router* fails to absorb counts as a
# failure — the gate is 100% success via the router's own failover.
RS1="$(mktemp -u /tmp/linguist-chaos-s1-XXXXXX.sock)"
RS2="$(mktemp -u /tmp/linguist-chaos-s2-XXXXXX.sock)"
FRONT="$(mktemp -u /tmp/linguist-chaos-front-XXXXXX.sock)"
target/release/linguist serve --socket "$RS1" --workers 2 --queue 64 &
S1_PID=$!
target/release/linguist serve --socket "$RS2" --workers 2 --queue 64 &
S2_PID=$!
ROUTER_PID=""
CHAOS_PID=""
trap 'rm -rf "$CKPT"
      for P in "$SERVE_PID" "$S1_PID" "$S2_PID" "$ROUTER_PID" "$CHAOS_PID"; do
        [ -n "$P" ] && kill "$P" 2>/dev/null || true
      done
      rm -f "$SOCK" "$RS1" "$RS2" "$FRONT"' EXIT
for _ in $(seq 1 100); do
  [ -S "$RS1" ] && [ -S "$RS2" ] && break
  sleep 0.05
done
[ -S "$RS1" ] && [ -S "$RS2" ] || { echo "shards never bound"; exit 1; }
target/release/linguist router --socket "$FRONT" \
    --shard "unix:$RS1" --shard "unix:$RS2" \
    --health-interval-ms 50 --probe-timeout-ms 250 \
    --attempt-timeout-ms 500 --breaker-cooldown-ms 100 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
  [ -S "$FRONT" ] && break
  sleep 0.05
done
[ -S "$FRONT" ] || { echo "router never bound its socket"; exit 1; }
( sleep 0.4
  kill -KILL "$S2_PID" 2>/dev/null
  sleep 0.4
  exec target/release/linguist serve --socket "$RS2" --workers 2 --queue 64 ) &
CHAOS_PID=$!
target/release/linguist load --socket "$FRONT" \
    --rate 120 --duration-ms 1500 --grammars 6 --budget 32 --json \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["failed"] == 0, ("requests failed despite failover", r)
assert r["success_rate"] == 1.0, r
assert r["sent"] >= 100, ("load undershot", r["sent"])
'
# The health loop must have ejected the killed shard, re-admitted the
# restarted one, and replicated hot grammars into it before traffic.
RECOVERED=""
for _ in $(seq 1 100); do
  if target/release/linguist client --socket "$FRONT" stats \
    | python3 -c '
import json, sys
r = json.load(sys.stdin)
shards = r["shards"]
assert r["ok"], r
ok = (all(s["healthy"] for s in shards)
      and sum(s["ejections"] for s in shards) >= 1
      and sum(s["readmissions"] for s in shards) >= 1
      and sum(s["replicated"] for s in shards) >= 1)
sys.exit(0 if ok else 1)
' 2>/dev/null; then RECOVERED=yes; break; fi
  sleep 0.05
done
[ "$RECOVERED" = yes ] || { echo "killed shard never recovered (no ejection/readmission/replication)"; exit 1; }
target/release/linguist client --socket "$FRONT" shutdown > /dev/null
wait "$ROUTER_PID" || { echo "router exited non-zero"; exit 1; }
ROUTER_PID=""
target/release/linguist client --socket "$RS1" shutdown > /dev/null
wait "$S1_PID" || { echo "shard 1 exited non-zero"; exit 1; }
S1_PID=""
target/release/linguist client --socket "$RS2" shutdown > /dev/null
wait "$CHAOS_PID" || { echo "restarted shard exited non-zero"; exit 1; }
CHAOS_PID=""
S2_PID=""
echo "chaos smoke: shard killed mid-run, zero failed requests, recovery replicated"

echo "== serve-resilience bench snapshot =="
cargo bench -q -p linguist-bench --bench serve_resilience > /dev/null
test -f target/BENCH_serve_resilience.json || { echo "no bench snapshot"; exit 1; }
python3 -c '
import json
r = json.load(open("target/BENCH_serve_resilience.json"))
rows = r["rows"]
assert len(rows) == 6, len(rows)
for row in rows:
    for key in ("p50_ms", "p99_ms", "p999_ms", "success_rate", "offered_rps"):
        assert key in row, (key, row)
    if row["chaos"] == "steady" or row["shards"] >= 2:
        assert row["success_rate"] == 1.0, ("failover must absorb the kill", row)
floor = [r2 for r2 in rows if r2["shards"] == 1 and r2["chaos"] == "kill_one"]
assert floor and floor[0]["failed"] > 0, ("1-shard kill should show the outage floor", floor)
'
python3 -m json.tool < BENCH_serve_resilience.json > /dev/null
echo "bench snapshot parses; 2+ shard kill legs fully succeed"

echo "== compiled-engine AOT end-to-end =="
target/release/linguist crates/grammars/lg/calc.lg --profile=json --engine aot \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["engine"] == "aot", r.get("engine")
assert r.get("engine_fallback") is None, r["engine_fallback"]
assert r["eval_error"] is None, r["eval_error"]
'
AOTSOCK="$(mktemp -u /tmp/linguist-verify-aot-XXXXXX.sock)"
target/release/linguist serve --socket "$AOTSOCK" --workers 2 --queue 8 --engine aot &
AOT_PID=$!
trap 'rm -rf "$CKPT"
      for P in "$SERVE_PID" "$S1_PID" "$S2_PID" "$ROUTER_PID" "$CHAOS_PID" "$AOT_PID"; do
        [ -n "$P" ] && kill "$P" 2>/dev/null || true
      done
      rm -f "$SOCK" "$RS1" "$RS2" "$FRONT" "$AOTSOCK"' EXIT
for _ in $(seq 1 100); do
  [ -S "$AOTSOCK" ] && break
  sleep 0.05
done
[ -S "$AOTSOCK" ] || { echo "aot daemon never bound its socket"; exit 1; }
AOTHANDLE="$(target/release/linguist client --socket "$AOTSOCK" \
    load crates/grammars/lg/calc.lg --scanner calc --name calc \
  | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"]; print(r["grammar"])')"
target/release/linguist client --socket "$AOTSOCK" \
    translate "$AOTHANDLE" --input '6 * 7' \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["outputs"]["V"] == "42", r["outputs"]
assert r["engine"] == "aot", r.get("engine")
assert "engine_fallback" not in r, r
'
target/release/linguist client --socket "$AOTSOCK" stats \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["engine"]["kind"] == "aot", r["engine"]
assert r["engine"]["aot_runs"] >= 1, r["engine"]
assert r["engine"]["fallbacks"] == 0, r["engine"]
'
target/release/linguist client --socket "$AOTSOCK" shutdown > /dev/null
wait "$AOT_PID" || { echo "aot daemon exited non-zero"; exit 1; }
AOT_PID=""
echo "aot engine serves end to end: compiled translate, tagged reply, counted in stats"

echo "== compiled differential smoke =="
if command -v rustc > /dev/null; then
  # The ignored-by-default fifth-leg property: generated grammars must
  # produce byte-identical output frames from their JIT-compiled
  # evaluators. Content-hash caching means one rustc run per distinct
  # grammar across the whole sweep.
  PROPTEST_CASES=8 cargo test -q --release --test differential -- \
    --ignored generated_grammars_agree_with_compiled_engine
  echo "compiled evaluators agree with the interpreter on 8 generated grammars"
else
  echo "SKIP: rustc not on PATH — compiled differential smoke not run"
fi

echo "== compiled-vs-interpreted bench snapshot =="
cargo bench -q -p linguist-bench --bench compiled_vs_interpreted > /dev/null
test -f target/BENCH_compiled_vs_interpreted.json || { echo "no bench snapshot"; exit 1; }
python3 -c '
import json
r = json.load(open("target/BENCH_compiled_vs_interpreted.json"))
assert len(r["rows"]) == 5, r["rows"]
for row in r["rows"]:
    for key in ("grammar", "nodes", "interpreted_us", "file_interpreted_us",
                "aot_us", "aot_speedup", "aot_speedup_vs_files"):
        assert key in row, (key, row)
# Fresh-run floor, conservative against CI noise; the committed copy
# below carries the measured headline.
assert r["aot_speedup_vs_files_geomean"] >= 3.0, r["aot_speedup_vs_files_geomean"]
'
python3 -c '
import json
r = json.load(open("BENCH_compiled_vs_interpreted.json"))
assert len(r["rows"]) == 5, r["rows"]
assert r["aot_speedup_vs_files_geomean"] >= 5.0, \
    ("committed snapshot must document the >=5x claim", r["aot_speedup_vs_files_geomean"])
'
echo "bench snapshot parses; AOT >=5x over the disk-backed interpreter"

echo "== optimizer identity gate =="
# The same grammars, the same budget-synthesized derivation, one daemon
# with the optimizer on (the default) and one with it off. The outputs
# must be byte-for-byte identical — the optimizer is only allowed to
# change how the translation is computed, never what it computes. The
# optimized daemon must also account for its transforms in stats.
ONSOCK="$(mktemp -u /tmp/linguist-verify-opton-XXXXXX.sock)"
OFFSOCK="$(mktemp -u /tmp/linguist-verify-optoff-XXXXXX.sock)"
target/release/linguist serve --socket "$ONSOCK" --workers 2 --queue 8 --opt=on &
ON_PID=$!
target/release/linguist serve --socket "$OFFSOCK" --workers 2 --queue 8 --opt=off &
OFF_PID=$!
trap 'rm -rf "$CKPT"
      for P in "$SERVE_PID" "$S1_PID" "$S2_PID" "$ROUTER_PID" "$CHAOS_PID" "$AOT_PID" "$ON_PID" "$OFF_PID"; do
        [ -n "$P" ] && kill "$P" 2>/dev/null || true
      done
      rm -f "$SOCK" "$RS1" "$RS2" "$FRONT" "$AOTSOCK" "$ONSOCK" "$OFFSOCK"' EXIT
for _ in $(seq 1 100); do
  [ -S "$ONSOCK" ] && [ -S "$OFFSOCK" ] && break
  sleep 0.05
done
[ -S "$ONSOCK" ] && [ -S "$OFFSOCK" ] || { echo "opt daemons never bound"; exit 1; }
for G in meta pascal; do
  ON_HANDLE="$(target/release/linguist client --socket "$ONSOCK" \
      load "crates/grammars/lg/$G.lg" --scanner "$G" --name "$G" \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"], r; print(r["grammar"])')"
  OFF_HANDLE="$(target/release/linguist client --socket "$OFFSOCK" \
      load "crates/grammars/lg/$G.lg" --scanner "$G" --name "$G" \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"], r; print(r["grammar"])')"
  ON_OUT="$(target/release/linguist client --socket "$ONSOCK" translate "$ON_HANDLE" --budget 200 \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"], r; print(json.dumps(r["outputs"], sort_keys=True))')"
  OFF_OUT="$(target/release/linguist client --socket "$OFFSOCK" translate "$OFF_HANDLE" --budget 200 \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"], r; print(json.dumps(r["outputs"], sort_keys=True))')"
  [ "$ON_OUT" = "$OFF_OUT" ] || {
    echo "$G: optimized outputs diverge from unoptimized"
    echo "  on:  $ON_OUT"
    echo "  off: $OFF_OUT"
    exit 1
  }
done
target/release/linguist client --socket "$ONSOCK" stats \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
o = r["optimizer"]
assert o["folded"] > 0 and o["eliminated"] > 0, ("optimized daemon folded nothing", o)
'
target/release/linguist client --socket "$OFFSOCK" stats \
  | python3 -c '
import json, sys
o = json.load(sys.stdin)["optimizer"]
assert o == {"folded": 0, "eliminated": 0, "collapsed": 0}, ("opt=off daemon optimized", o)
'
target/release/linguist client --socket "$ONSOCK" shutdown > /dev/null
wait "$ON_PID" || { echo "opt=on daemon exited non-zero"; exit 1; }
ON_PID=""
target/release/linguist client --socket "$OFFSOCK" shutdown > /dev/null
wait "$OFF_PID" || { echo "opt=off daemon exited non-zero"; exit 1; }
OFF_PID=""
echo "meta + pascal byte-identical across --opt=on/off; stats counters accounted"

echo "== opt-effect bench snapshot =="
cargo bench -q -p linguist-bench --bench opt_effect > /dev/null
test -f target/BENCH_opt_effect.json || { echo "no bench snapshot"; exit 1; }
# Structural invariants hold on any run; the wall-time gate is strict
# (<=2% regression) on the committed copy, which carries the measured
# numbers, and conservative (<=10%) on the fresh run to absorb CI noise.
for SNAP in "target/BENCH_opt_effect.json 1.10" "BENCH_opt_effect.json 1.02"; do
  python3 -c '
import json, sys
snap, slack = sys.argv[1], float(sys.argv[2])
r = json.load(open(snap))
g = r["grammars"]
assert len(g) == 5, sorted(g)
reduced = 0
for name, rows in g.items():
    off, on = rows["off"], rows["on"]
    assert on["passes"] <= off["passes"], (snap, name, "optimizer added a pass")
    assert on["records_written"] <= off["records_written"], (snap, name, "optimizer added records")
    assert on["aot_source_bytes"] < off["aot_source_bytes"], (snap, name, "optimizer grew the evaluator")
    assert on["wall_us"] <= off["wall_us"] * slack, (snap, name, off["wall_us"], on["wall_us"])
    if on["records_written"] < off["records_written"]:
        reduced += 1
assert reduced >= 3, (snap, "records-written must shrink on >=3 grammars", reduced)
' $SNAP
done
echo "bench snapshot parses; records-written shrinks, no wall-time regression"

echo "verify: all green"
