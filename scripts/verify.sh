#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer's machine will run, fully offline.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. formatting check
#   2. release build of the whole workspace
#   3. tier-1 test suite (root package integration tests)
#   4. full workspace test suite (every crate + vendored shims)
#   5. clippy, warnings denied
#   6. --profile=json smoke test: the CLI's JSON output must parse
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo clippy --workspace -q -- -D warnings =="
cargo clippy --workspace -q -- -D warnings

echo "== linguist --profile=json smoke test =="
target/release/linguist crates/grammars/lg/calc.lg --profile=json | python3 -m json.tool > /dev/null
echo "profile JSON parses"

echo "verify: all green"
