#!/usr/bin/env bash
# Pre-PR gate: everything a reviewer's machine will run, fully offline.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. formatting check
#   2. release build of the whole workspace
#   3. tier-1 test suite (root package integration tests)
#   4. full workspace test suite (every crate + vendored shims)
#   5. clippy, warnings denied
#   6. --profile=json smoke test: the CLI's JSON output must parse
#   7. crash-resume smoke test: a checkpointed run can be resumed and
#      reports the boundary it restarted after
#   8. checkpoint-overhead bench snapshot lands in target/
#   9. serve smoke test: daemon on a temp Unix socket answers a load,
#      a check (against the compiled cache, no re-analysis), a
#      translate, and a stats round-trip, then shuts down cleanly
#  10. lint gate: `linguist check --deny-warnings` accepts the meta
#      grammar, and the JSON report parses and is deterministic
#  11. fuzz smoke: a bounded run of the four-way differential oracle
#      (generated grammars + corpus replay) under PROPTEST_CASES=12
#  12. batch-throughput bench snapshot lands in target/ and records a
#      lock-free owned store (plus the legacy ablation's lock count)
#  13. scaling gates: the ignored-by-default batch scaling tier — the
#      >=2.5x @ 4 workers regression test (self-skips below 4 cores)
#      and the bounded 2-worker smoke (parallel dispatch must not be
#      slower than sequential beyond scheduler noise)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --workspace =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo clippy --workspace -q -- -D warnings =="
cargo clippy --workspace -q -- -D warnings

echo "== linguist --profile=json smoke test =="
target/release/linguist crates/grammars/lg/calc.lg --profile=json | python3 -m json.tool > /dev/null
echo "profile JSON parses"

echo "== crash-resume smoke test =="
CKPT="$(mktemp -d)"
trap 'rm -rf "$CKPT"' EXIT
target/release/linguist crates/grammars/lg/block.lg --profile=json \
  --checkpoint-dir "$CKPT" --retries 2 > /dev/null
test -f "$CKPT/MANIFEST" || { echo "no manifest written"; exit 1; }
target/release/linguist crates/grammars/lg/block.lg --profile=json \
  --checkpoint-dir "$CKPT" --resume \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)["recovery"]
assert r["resumed_from"] is not None, "resume did not use the checkpoint"
'
echo "checkpoint + resume round-trips"

echo "== checkpoint-overhead bench snapshot =="
cargo bench -q -p linguist-bench --bench table_checkpoint_overhead > /dev/null
test -f target/BENCH_checkpoint_overhead.json || { echo "no bench snapshot"; exit 1; }
python3 -m json.tool < target/BENCH_checkpoint_overhead.json > /dev/null
echo "bench snapshot parses"

echo "== serve smoke test =="
SOCK="$(mktemp -u /tmp/linguist-verify-XXXXXX.sock)"
target/release/linguist serve --socket "$SOCK" --workers 2 --queue 8 &
SERVE_PID=$!
trap 'rm -rf "$CKPT"; kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "daemon never bound its socket"; exit 1; }
HANDLE="$(target/release/linguist client --socket "$SOCK" \
    load crates/grammars/lg/meta.lg --scanner meta --name meta \
  | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"]; print(r["grammar"])')"
target/release/linguist client --socket "$SOCK" \
    raw "{\"op\":\"check\",\"grammar\":\"$HANDLE\"}" \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["errors"] == 0 and r["warnings"] == 0, r
assert r["passes"] == 4, r
'
target/release/linguist client --socket "$SOCK" \
    translate "$HANDLE" --budget 200 \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["passes"] == 4, "meta grammar should evaluate in 4 passes"
'
target/release/linguist client --socket "$SOCK" stats \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"], r
assert r["cache"]["analyses"] == 1, "one grammar, one analysis"
assert r["requests"]["translates"] == 1, r["requests"]
'
target/release/linguist client --socket "$SOCK" shutdown > /dev/null
wait "$SERVE_PID" || { echo "daemon exited non-zero"; exit 1; }
[ ! -e "$SOCK" ] || { echo "socket file not cleaned up"; exit 1; }
echo "serve round-trips and shuts down cleanly"

echo "== linguist check lint gate =="
target/release/linguist check --deny-warnings crates/grammars/lg/meta.lg > /dev/null
target/release/linguist check --format=json crates/grammars/lg/meta.lg \
  | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["errors"] == 0 and r["warnings"] == 0, (r["errors"], r["warnings"])
assert r["passes"] == 4, r["passes"]
codes = {d["code"] for d in r["diagnostics"]}
assert {"AG004", "AG005"} <= codes, codes
'
A="$(target/release/linguist check --format=json crates/grammars/lg/meta.lg)"
B="$(target/release/linguist check --format=json crates/grammars/lg/meta.lg)"
[ "$A" = "$B" ] || { echo "check JSON is not deterministic"; exit 1; }
echo "meta grammar lints clean; JSON parses and is deterministic"

echo "== differential fuzz smoke =="
# Bounded smoke over the same property the full suite takes to 64 cases:
# generated grammars through sequential / parallel / crash-resume / serve,
# plus a replay of every pinned fixture in tests/corpus/. Deterministic —
# the shim derives case seeds from the test's module path.
PROPTEST_CASES=12 cargo test -q --release --test differential
echo "differential oracle agrees across all four modes"

echo "== batch-throughput bench snapshot =="
cargo bench -q -p linguist-bench --bench table_batch_throughput > /dev/null
test -f target/BENCH_table_batch_throughput.json || { echo "no bench snapshot"; exit 1; }
python3 -c '
import json
r = json.load(open("target/BENCH_table_batch_throughput.json"))
assert r["backing"] == "memory_owned", r["backing"]
assert r["lock_acquisitions"] == 0, "owned store took store locks"
assert r["shared_store_lock_acquisitions"] > 0, "legacy ablation row missing"
assert len(r["sweep"]) == 4, r["sweep"]
'
echo "bench snapshot parses; owned store took zero store locks"

echo "== batch scaling gates =="
# The ignored-by-default scaling tier, serialized: two concurrent
# throughput measurements would skew each other. The 4-worker >=2.5x
# assertion self-skips below 4 cores (its zero-lock invariant still
# runs); the 2-worker smoke is a bounded gate on every machine.
cargo test -q --release --test batch -- --ignored --test-threads=1
echo "scaling regression + 2-worker smoke pass"

echo "verify: all green"
